package bench

import (
	"solros/internal/core"
	"solros/internal/ninep"
	"solros/internal/sim"
	"solros/internal/transport"
	"solros/internal/workload"
)

// Ablations isolates the design decisions DESIGN.md calls out, each as a
// with/without pair on the same workload, plus an interconnect-generation
// sensitivity sweep.
func Ablations() []Row {
	var rows []Row
	rows = append(rows, ablateCoalescing()...)
	rows = append(rows, ablateMasterPlacement()...)
	rows = append(rows, ablateCombineBatch()...)
	rows = append(rows, ablateSharedCache()...)
	rows = append(rows, ablatePCIeGeneration()...)
	return rows
}

// ablatePCIeGeneration scales the co-processor links to PCIe Gen3/Gen4
// rates (§2: "current PCIe Gen3 x16 already provides 15.75 GB/s and it
// will double in PCIe Gen 4"). Random reads stay SSD-bound under Solros,
// and the stock virtio path stays CPU-copy-bound — the wires were never
// the problem, which is the paper's whole argument for fixing the
// software.
func ablatePCIeGeneration() []Row {
	var rows []Row
	for _, gen := range []struct {
		label string
		scale int
	}{{"gen2", 1}, {"gen3", 2}, {"gen4", 4}} {
		m := core.NewMachine(core.Config{
			DiskBytes:    fsDiskBytes,
			PhiMemBytes:  96 << 20,
			LinkGenScale: gen.scale,
			ProxyWorkers: 8,
		})
		var secs float64
		m.MustRun(func(p *sim.Proc, mm *core.Machine) {
			phi := mm.Phis[0]
			fd, _ := phi.FS.Open(p, "/f", 2)
			f, _ := mm.FS.Open(p, "/f")
			f.Truncate(p, 48<<20)
			offs := workload.Offsets(11, 48<<20, 1<<20, 64)
			start := p.Now()
			core.Parallel(p, 8, "reader", func(i int, wp *sim.Proc) {
				buf := phi.FS.AllocBuffer(1 << 20)
				for k := 0; k < 8; k++ {
					if _, err := phi.FS.Read(wp, fd, offs[i*8+k], buf, 1<<20); err != nil {
						panic(err)
					}
				}
			})
			secs = (p.Now() - start).Seconds()
		})
		rows = append(rows, row("ablate", "pcie-"+gen.label, "solros-read", gbs(64<<20, secs), "GB/s"))
	}
	return rows
}

// ablateCoalescing toggles the IO-vector driver (§5): single-threaded
// (latency-bound) fragmented 2 MB reads, reporting both throughput and
// interrupt counts — the saturation regime hides the difference, the
// per-op regime exposes it.
func ablateCoalescing() []Row {
	run := func(coalesceOff bool) (float64, float64) {
		m := core.NewMachine(core.Config{CoalesceOff: coalesceOff, DiskBytes: 96 << 20, PhiMemBytes: 96 << 20})
		var secs float64
		var ints int64
		m.MustRun(func(p *sim.Proc, mm *core.Machine) {
			phi := mm.Phis[0]
			fd, _ := phi.FS.Open(p, "/f", 2)
			f, _ := mm.FS.Open(p, "/f")
			f.Truncate(p, 48<<20)
			buf := phi.FS.AllocBuffer(2 << 20)
			i0 := mm.SSD.Stats().Interrupts
			start := p.Now()
			for _, off := range workload.Offsets(3, 48<<20, 2<<20, 16) {
				if _, err := phi.FS.Read(p, fd, off, buf, 2<<20); err != nil {
					panic(err)
				}
			}
			secs = (p.Now() - start).Seconds()
			ints = mm.SSD.Stats().Interrupts - i0
		})
		return gbs(16*(2<<20), secs), float64(ints) / 16
	}
	onG, onI := run(false)
	offG, offI := run(true)
	return []Row{
		row("ablate", "nvme-coalescing", "on", onG, "GB/s"),
		row("ablate", "nvme-coalescing", "off", offG, "GB/s"),
		row("ablate", "nvme-coalescing", "on-irq/op", onI, "interrupts"),
		row("ablate", "nvme-coalescing", "off-irq/op", offI, "interrupts"),
	}
}

// ablateMasterPlacement moves the ring master for a phi->host RPC-style
// stream with one sender (§4.2.2: place the master at the co-processor so
// the slow Phi works in local memory and only the fast host crosses the
// bus). With massive sender parallelism the trade-off can invert; the RPC
// rings carry one logical stream per direction, which is this regime.
func ablateMasterPlacement() []Row {
	atPhi := ringStream(true, 1, 64, 2000, transport.Options{})
	atHost := ringStreamMasterHost(1, 64, 2000)
	return []Row{
		row("ablate", "ring-master", "at-phi(sender)", atPhi/1000, "Kops/s"),
		row("ablate", "ring-master", "at-host", atHost/1000, "Kops/s"),
	}
}

// ablateCombineBatch varies the combining batch bound (§4.2.3).
func ablateCombineBatch() []Row {
	var rows []Row
	for _, batch := range []int{1, 8, 64} {
		ops := ringStream(true, 32, 64, 300, transport.Options{Batch: batch})
		rows = append(rows, row("ablate", "combine-batch", itoa(batch), ops/1000, "Kops/s"))
	}
	return rows
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// ablateSharedCache measures a second co-processor rereading a file the
// first already pulled, with the shared buffer cache on vs off (§4.3).
func ablateSharedCache() []Row {
	run := func(disable bool) float64 {
		const size = 8 << 20
		m := core.NewMachine(core.Config{Phis: 2, DisableCache: disable, CacheBytes: 32 << 20})
		var secs float64
		m.MustRun(func(p *sim.Proc, mm *core.Machine) {
			f, err := mm.FS.Create(p, "/shared")
			if err != nil {
				panic(err)
			}
			if err := f.Truncate(p, size); err != nil {
				panic(err)
			}
			// Phi0 warms the cache through buffered reads.
			fd0, _ := mm.Phis[0].FS.Open(p, "/shared", ninep.OBuffer)
			b0 := mm.Phis[0].FS.AllocBuffer(size)
			mm.Phis[0].FS.Read(p, fd0, 0, b0, size)
			// Phi1's reread is the measurement.
			fd1, _ := mm.Phis[1].FS.Open(p, "/shared", ninep.OBuffer)
			b1 := mm.Phis[1].FS.AllocBuffer(1 << 20)
			offs := workload.Offsets(5, size, 1<<20, 16)
			start := p.Now()
			for _, off := range offs {
				if _, err := mm.Phis[1].FS.Read(p, fd1, off, b1, 1<<20); err != nil {
					panic(err)
				}
			}
			secs = (p.Now() - start).Seconds()
		})
		return gbs(16<<20, secs)
	}
	return []Row{
		row("ablate", "shared-cache", "on", run(false), "GB/s"),
		row("ablate", "shared-cache", "off", run(true), "GB/s"),
	}
}
