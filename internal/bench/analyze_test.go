package bench

import (
	"strconv"
	"strings"
	"testing"
)

// The fig-analyze acceptance: the planted anomaly — the analytics tenant
// with 32x values pinned to one shard — must be named by the blame
// report's top two entries, deterministically, and arming the analyzer
// must not move virtual time at all relative to tracing alone.

func analyzeQuickRun(t *testing.T, analyzed bool) analyzeResult {
	t.Helper()
	defer func(q bool) { Quick = q }(Quick)
	Quick = true
	load, n := analyzeLoad()
	return analyzeRun(analyzed, load, n)
}

func TestAnalyzeNamesPlantedCulprits(t *testing.T) {
	r := analyzeQuickRun(t, true)
	if r.traces == 0 {
		t.Fatal("trace index is empty — no workload.request roots finalized")
	}
	if r.report == nil || len(r.report.Entries) == 0 {
		t.Fatal("blame report has no entries")
	}
	if r.topHits != 2 {
		for i, e := range r.report.Entries {
			t.Logf("entry %d: kind=%s name=%s score=%.3f skew=%.2f stage=%s",
				i+1, e.Kind, e.Name, e.Score, e.Skew, e.Stage)
		}
		t.Fatalf("top-2 blame entries name %d/2 planted culprits (want tenant=analytics and shard=%d)",
			r.topHits, analyzeHotShard)
	}
}

func TestAnalyzeHotspotDetector(t *testing.T) {
	r := analyzeQuickRun(t, true)
	if r.hotShard != strconv.Itoa(analyzeHotShard) {
		t.Fatalf("hotspot names shard %q, want %d", r.hotShard, analyzeHotShard)
	}
	if r.hotTenant != "analytics" {
		t.Fatalf("hotspot names tenant %q, want analytics", r.hotTenant)
	}
}

// Arming the analyzer on top of tracing must not move the virtual clock:
// the analyzer only observes completed spans. The digests fold every
// request's latency, so equality means the schedules are identical
// operation by operation — overhead is exactly zero.
func TestAnalyzePassivity(t *testing.T) {
	base := analyzeQuickRun(t, false)
	full := analyzeQuickRun(t, true)
	if base.digest != full.digest {
		t.Fatalf("latency digests differ: tracing-only %08x, analyze %08x — analyzer perturbed the schedule",
			base.digest, full.digest)
	}
	if base.vt != full.vt {
		t.Fatalf("final virtual times differ: tracing-only %v, analyze %v", base.vt, full.vt)
	}
	if pct := analyzeOverheadPct(base, full); pct != 0 {
		t.Fatalf("overhead = %g%%, want exactly 0", pct)
	}
}

// Same seed, same report bytes: the subcommand's double-run determinism
// contract, pinned at the package level too.
func TestAnalyzeReportDeterministic(t *testing.T) {
	a := analyzeQuickRun(t, true)
	b := analyzeQuickRun(t, true)
	if a.blameText != b.blameText {
		t.Fatalf("blame reports differ between identical runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
			a.blameText, b.blameText)
	}
	if !strings.Contains(a.blameText, "analytics") {
		t.Fatalf("report does not mention the analytics tenant:\n%s", a.blameText)
	}
}
