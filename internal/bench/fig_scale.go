package bench

import (
	"bytes"
	"fmt"

	"solros/internal/apps/kvstore"
	"solros/internal/core"
	"solros/internal/dataplane"
	"solros/internal/ninep"
	"solros/internal/sim"
	"solros/internal/workload"
)

// fig-scale: aggregate throughput and p99 latency vs. co-processor count
// (ISSUE 9 / ROADMAP scale-out). Two legs exercise the control plane from
// both sides — delegated cache-hot file reads (the FSProxy serve path)
// and KV connection churn (the TCPProxy admission path plus the store's
// delegated I/O underneath). Two series per leg: "unsharded" runs the
// sharded serve architecture with a single shard, so every request from
// every co-processor serializes on one shard lock and one global fid
// table; "sharded" gives each co-processor its own shard with private fid
// tables. The saturation knee of the unsharded series sits where the
// single serialized slice caps the fleet; sharding moves it off the right
// edge of the sweep.
//
// Note the unsharded baseline is ProxyShards=1, not the seed's
// ProxyShards=0 layout: the seed's per-channel serve loops share no lock
// at all (each channel has a private worker pool), so they scale linearly
// and model a control plane with no shared state — nothing to shard. The
// single-shard configuration is the honest baseline: same architecture,
// same costs, contention on one serialized slice.

const (
	scalePort          = 7500
	scaleFileBytes     = 256 << 10
	scaleBlock         = 4096
	scaleClientsPerPhi = 8
	scaleKVWorkers     = 4
)

// scaleXs is the co-processor sweep.
func scaleXs() ([]int, int, int) {
	if Quick {
		return []int{1, 4, 16}, 12, 2 // phis, FS ops/client, KV conns/worker
	}
	return []int{1, 2, 4, 8, 16, 32}, 40, 4
}

// scaleConfig builds one series point. Unsharded = one shard for the
// whole fleet; sharded = one shard per co-processor with private fids.
func scaleConfig(phis int, sharded bool) core.Config {
	cfg := core.Config{Phis: phis, ProxyWorkers: 8, ProxyShards: 1}
	if sharded {
		cfg.ProxyShards = phis
		cfg.ShardFids = true
	}
	return cfg
}

// Scale produces the fig-scale table.
func Scale() []Row {
	xs, fsOps, kvConns := scaleXs()
	var rows []Row
	for _, series := range []string{"unsharded", "sharded"} {
		sharded := series == "sharded"
		var digest uint32 = 2166136261
		var fsTput []float64
		for _, phis := range xs {
			x := fmt.Sprintf("%dphi", phis)
			fr := scaleFSRun(scaleConfig(phis, sharded), fsOps)
			fsTput = append(fsTput, fr.achievedKops)
			kr := scaleKVRun(scaleConfig(phis, sharded), kvConns)
			rows = append(rows,
				row("fig-scale", series+" fs tput", x, fr.achievedKops, "Kops/s"),
				row("fig-scale", series+" fs p99", x, us(fr.p99), "us"),
				row("fig-scale", series+" kv tput", x, kr.achievedKops, "Kconn/s"),
				row("fig-scale", series+" kv p99", x, us(kr.p99), "us"),
			)
			digest = digest*16777619 ^ fr.digest
			digest = digest*16777619 ^ kr.digest
		}
		rows = append(rows,
			row("fig-scale", "knee", series, scaleKnee(xs, fsTput), "phis"),
			row("fig-scale", "digest", series, float64(digest), "fnv32"),
		)
	}
	return rows
}

// scaleKnee finds the smallest co-processor count where aggregate
// throughput falls below 70% of linear scaling from the single-phi
// point. A series that never saturates inside the sweep reports twice
// the last x — "beyond the right edge" — so knee positions stay
// comparable (and gateable) even when one series doesn't bend.
func scaleKnee(xs []int, tput []float64) float64 {
	for i, x := range xs {
		if tput[i] < 0.7*tput[0]*float64(x) {
			return float64(x)
		}
	}
	return 2 * float64(xs[len(xs)-1])
}

// scaleFSRun drives closed-loop cache-hot 4KB delegated reads from every
// co-processor: per-phi private files, prefetched into the shared buffer
// cache, scaleClientsPerPhi reader procs per phi. Aggregate Kops/s and
// per-op latency come out through the same summarize fold as fig-serve.
func scaleFSRun(cfg core.Config, opsPerClient int) serveResult {
	m := core.NewMachine(cfg)
	var res serveResult
	m.MustRun(func(p *sim.Proc, mm *core.Machine) {
		type phiFile struct {
			fd  dataplane.Fd
			off []int64
		}
		files := make([]phiFile, len(mm.Phis))
		for i, phi := range mm.Phis {
			path := fmt.Sprintf("/s%d", i)
			fd, err := phi.FS.Open(p, path, ninep.OCreate|ninep.OBuffer)
			if err != nil {
				panic(err)
			}
			f, err := mm.FS.Open(p, path)
			if err != nil {
				panic(err)
			}
			if err := f.Truncate(p, scaleFileBytes); err != nil {
				panic(err)
			}
			if err := mm.FSProxy.Prefetch(p, path); err != nil {
				panic(err)
			}
			files[i] = phiFile{
				fd:  fd,
				off: workload.Offsets(Seed+int64(i), scaleFileBytes, scaleBlock, scaleClientsPerPhi*opsPerClient),
			}
		}
		n := len(mm.Phis) * scaleClientsPerPhi * opsPerClient
		latencies := make([]sim.Time, n)
		start := p.Now()
		var lastDone sim.Time
		done := sim.NewWaitGroup("scale-fs")
		for i, phi := range mm.Phis {
			i, phi := i, phi
			for c := 0; c < scaleClientsPerPhi; c++ {
				c := c
				done.Add(1)
				p.Spawn(fmt.Sprintf("scale-rd-%d-%d", i, c), func(wp *sim.Proc) {
					defer wp.DoneWG(done)
					buf := phi.FS.AllocBuffer(scaleBlock)
					base := (i*scaleClientsPerPhi + c) * opsPerClient
					for k := 0; k < opsPerClient; k++ {
						t0 := wp.Now()
						if _, err := phi.FS.Read(wp, files[i].fd, files[i].off[c*opsPerClient+k], buf, scaleBlock); err != nil {
							panic(err)
						}
						t1 := wp.Now()
						latencies[base+k] = t1 - t0
						if t1 > lastDone {
							lastDone = t1
						}
					}
				})
			}
		}
		p.WaitWG(done)
		res = summarize(latencies, start, lastDone)
	})
	return res
}

// scaleKVRun measures connection churn through the shared-listener
// balancer: scaleKVWorkers procs per co-processor each loop dial → one
// GET → close, so every round pays admission (the serialized accept
// slice) plus a delegated buffered read inside the store. Latency is one
// full churn round; throughput is rounds per second.
func scaleKVRun(cfg core.Config, connsPerWorker int) serveResult {
	m := core.NewMachine(cfg)
	m.EnableNetwork()
	phis := len(m.Phis)
	var res serveResult
	m.MustRun(func(p *sim.Proc, mm *core.Machine) {
		mm.TCPProxy.Balance = kvstore.Balancer()
		shards := make([]*kvstore.Shard, phis)
		serversDone := sim.NewWaitGroup("scale-kv-servers")
		for i, phi := range mm.Phis {
			if err := phi.Net.Listen(p, scalePort); err != nil {
				panic(err)
			}
			shards[i] = kvstore.NewShard(mm, i, kvstore.Options{})
			if err := shards[i].Open(p); err != nil {
				panic(err)
			}
			sv := kvstore.NewServer(shards[i], phi.Net, scalePort)
			serversDone.Add(1)
			p.Spawn(fmt.Sprintf("scale-kv-server-%d", i), func(sp *sim.Proc) {
				defer sp.DoneWG(serversDone)
				if err := sv.Run(sp); err != nil {
					panic(err)
				}
			})
		}
		// One bound key per shard so each churn round routes to a known
		// member and reads a real value off the delegated store.
		val := bytes.Repeat([]byte("v"), 128)
		bindKey := make([]string, phis)
		for k := 0; bindKeysMissing(bindKey); k++ {
			key := workload.KeyName(0, k)
			sh := kvstore.OwnerShard(key, phis)
			if bindKey[sh] == "" {
				if err := shards[sh].Put(p, key, val); err != nil {
					panic(err)
				}
				bindKey[sh] = key
			}
		}
		n := phis * scaleKVWorkers * connsPerWorker
		latencies := make([]sim.Time, n)
		start := p.Now()
		var lastDone sim.Time
		done := sim.NewWaitGroup("scale-kv")
		for i := 0; i < phis; i++ {
			i := i
			for w := 0; w < scaleKVWorkers; w++ {
				w := w
				done.Add(1)
				p.Spawn(fmt.Sprintf("scale-kv-%d-%d", i, w), func(wp *sim.Proc) {
					defer wp.DoneWG(done)
					base := (i*scaleKVWorkers + w) * connsPerWorker
					for k := 0; k < connsPerWorker; k++ {
						t0 := wp.Now()
						conn, err := mm.ClientStack.Dial(wp, mm.HostStack, scalePort)
						if err != nil {
							panic(err)
						}
						side := conn.Side(mm.ClientStack)
						cl := kvstore.NewClient(side)
						if _, _, err := cl.Get(wp, bindKey[i]); err != nil {
							panic(err)
						}
						side.Close(wp)
						t1 := wp.Now()
						latencies[base+k] = t1 - t0
						if t1 > lastDone {
							lastDone = t1
						}
					}
				})
			}
		}
		p.WaitWG(done)
		mm.TCPProxy.Stop(p)
		p.WaitWG(serversDone)
		res = summarize(latencies, start, lastDone)
	})
	return res
}

func bindKeysMissing(keys []string) bool {
	for _, k := range keys {
		if k == "" {
			return true
		}
	}
	return false
}

// ScaleSchema versions the BENCH_scale.json format.
const ScaleSchema = "solros-bench-scale/v1"

// ScaleBenchmarks runs the gated scale-out points. The sweep is fixed at
// 1→16 co-processors regardless of Quick (point names must be stable for
// benchdiff); Quick only reduces per-client work. Gated shape: sharded
// throughput at 16 phis, its speedup over one phi (the issue demands
// ≥3×), the knee positions of both series as a margin ratio (sharded
// knee strictly beyond unsharded knee ⇒ margin > 1), and the KV churn
// equivalents.
func ScaleBenchmarks() CoreBench {
	xs := []int{1, 2, 4, 8, 16}
	fsOps, kvConns := 40, 4
	if Quick {
		fsOps, kvConns = 12, 2
	}
	var shTput, unTput []float64
	var sh16, sh1 serveResult
	for _, phis := range xs {
		u := scaleFSRun(scaleConfig(phis, false), fsOps)
		s := scaleFSRun(scaleConfig(phis, true), fsOps)
		unTput = append(unTput, u.achievedKops)
		shTput = append(shTput, s.achievedKops)
		if phis == 1 {
			sh1 = s
		}
		if phis == 16 {
			sh16 = s
		}
	}
	kv1 := scaleKVRun(scaleConfig(1, true), kvConns)
	kv16 := scaleKVRun(scaleConfig(16, true), kvConns)
	kneeSh := scaleKnee(xs, shTput)
	kneeUn := scaleKnee(xs, unTput)
	return CoreBench{
		Schema: ScaleSchema,
		Points: []CorePoint{
			{Name: "scale_fs_x16_sharded", Value: sh16.achievedKops, Unit: "Kops/s", HigherIsBetter: true},
			{Name: "scale_fs_speedup_x16", Value: sh16.achievedKops / sh1.achievedKops, Unit: "x", HigherIsBetter: true},
			{Name: "scale_fs_p99_x16_sharded", Value: us(sh16.p99), Unit: "us", HigherIsBetter: false},
			{Name: "scale_fs_knee_sharded", Value: kneeSh, Unit: "phis", HigherIsBetter: true},
			{Name: "scale_fs_knee_margin", Value: kneeSh / kneeUn, Unit: "x", HigherIsBetter: true},
			{Name: "scale_kv_x16_sharded", Value: kv16.achievedKops, Unit: "Kconn/s", HigherIsBetter: true},
			{Name: "scale_kv_speedup_x16", Value: kv16.achievedKops / kv1.achievedKops, Unit: "x", HigherIsBetter: true},
		},
	}
}
