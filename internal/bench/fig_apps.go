package bench

import (
	"fmt"

	"solros/internal/apps/imagesearch"
	"solros/internal/apps/textindex"
	"solros/internal/baseline"
	"solros/internal/block"
	"solros/internal/core"
	"solros/internal/cpu"
	"solros/internal/dataplane"
	"solros/internal/fs"
	"solros/internal/netstack"
	"solros/internal/ninep"
	"solros/internal/nvme"
	"solros/internal/pcie"
	"solros/internal/sim"
	"solros/internal/workload"
)

// Text-indexing experiment geometry: a corpus of files scanned once by a
// pool of workers pulling (file, chunk) work items from a shared queue —
// the Phi variants use all 61 cores, the host its 24.
const (
	tiFiles     = 16
	tiFileBytes = 2 << 20
	tiChunk     = 512 << 10
	tiWorkers   = 61
)

// tiWork enumerates (file, offset) work items.
func tiWork() [][2]int64 {
	var items [][2]int64
	for f := int64(0); f < tiFiles; f++ {
		for off := int64(0); off < tiFileBytes; off += tiChunk {
			items = append(items, [2]int64{f, off})
		}
	}
	return items
}

func tiPath(i int) string { return fmt.Sprintf("/corpus/doc%02d", i) }

// seedCorpus writes the corpus through a host-mounted fs and syncs it so
// another mount of the same image sees it.
func seedCorpus(p *sim.Proc, fsys *fs.FS) {
	if err := fsys.Mkdir(p, "/corpus"); err != nil {
		panic(err)
	}
	for i := 0; i < tiFiles; i++ {
		f, err := fsys.Create(p, tiPath(i))
		if err != nil {
			panic(err)
		}
		if _, err := f.Write(p, 0, workload.Corpus(int64(i+1), tiFileBytes)); err != nil {
			panic(err)
		}
	}
	if err := fsys.Sync(p); err != nil {
		panic(err)
	}
}

// dataplaneFd is a typed alias to keep the work-queue map tidy.
type dataplaneFd = dataplane.Fd

// Fig17 reproduces the text-indexing application (§6.2): scan the corpus
// and build an inverted index, on Solros, the stock Phi (virtio), and the
// host. Reported as corpus MB/s.
func Fig17() []Row {
	totalBytes := int64(tiFiles * tiFileBytes)
	var rows []Row

	// --- Phi-Solros: stub reads (P2P), 61 lean cores tokenize.
	{
		m := core.NewMachine(core.Config{Phis: 1, DiskBytes: fsDiskBytes, PhiMemBytes: 128 << 20})
		var secs float64
		var terms int
		m.MustRun(func(p *sim.Proc, mm *core.Machine) {
			seedCorpus(p, mm.FS)
			phi := mm.Phis[0]
			items := tiWork()
			next := 0
			shards := make([]*textindex.Index, tiWorkers)
			start := p.Now()
			core.Parallel(p, tiWorkers, "indexer", func(i int, wp *sim.Proc) {
				shards[i] = textindex.NewIndex()
				fds := map[int64]dataplaneFd{}
				buf := phi.FS.AllocBuffer(tiChunk)
				for {
					if next >= len(items) {
						return
					}
					it := items[next]
					next++
					fd, ok := fds[it[0]]
					if !ok {
						f, err := phi.FS.Open(wp, tiPath(int(it[0])), 0)
						if err != nil {
							panic(err)
						}
						fd = dataplaneFd(f)
						fds[it[0]] = fd
					}
					n, err := phi.FS.Read(wp, dataplane.Fd(fd), it[1], buf, tiChunk)
					if err != nil {
						panic(err)
					}
					shards[i].AddDocument(wp, phi.Pool.Core(i), int32(it[0]), buf.Data[:n])
				}
			})
			final := textindex.NewIndex()
			for _, s := range shards {
				final.Merge(s)
			}
			secs = (p.Now() - start).Seconds()
			terms = final.Terms()
		})
		if terms == 0 {
			panic("fig17: solros produced empty index")
		}
		rows = append(rows, row("fig17", "phi-solros", "indexing", mbs(totalBytes, secs), "MB/s"))
	}

	// --- Stock Phi over virtio: full FS on the Phi, slow I/O path.
	{
		fab := pcie.New(256 << 20)
		ssd := nvme.New(fab, "nvme0", 0, fsDiskBytes)
		phi := fab.AddPhi("phi0", 0, 128<<20)
		if err := fs.Mkfs(ssd.Image(), 0); err != nil {
			panic(err)
		}
		vd := baseline.NewVirtioDisk(fab, phi, ssd)
		var secs float64
		e := sim.NewEngine()
		e.Spawn("main", 0, func(p *sim.Proc) {
			// Seed via a host mount of the same image, then remount
			// from the Phi.
			seedFS, err := fs.Mount(p, fab, block.NVMe{Dev: ssd})
			if err != nil {
				panic(err)
			}
			seedCorpus(p, seedFS)
			pl, err := baseline.MountPhiLinux(p, fab, vd, phi)
			if err != nil {
				panic(err)
			}
			pool := cpu.PhiPool()
			items := tiWork()
			next := 0
			files := map[int64]*fs.File{}
			start := p.Now()
			core.Parallel(p, tiWorkers, "indexer", func(i int, wp *sim.Proc) {
				ix := textindex.NewIndex()
				bufOff := phi.Mem.Alloc(tiChunk)
				for {
					if next >= len(items) {
						return
					}
					it := items[next]
					next++
					f, ok := files[it[0]]
					if !ok {
						var err error
						f, err = pl.Open(wp, tiPath(int(it[0])))
						if err != nil {
							panic(err)
						}
						files[it[0]] = f
					}
					if err := pl.Read(wp, f, it[1], tiChunk, pcie.Loc{Dev: phi, Off: bufOff}); err != nil {
						panic(err)
					}
					ix.AddDocument(wp, pool.Core(i), int32(it[0]), phi.Mem.Slice(bufOff, tiChunk))
				}
			})
			secs = (p.Now() - start).Seconds()
		})
		e.MustRun()
		rows = append(rows, row("fig17", "phi-virtio", "indexing", mbs(totalBytes, secs), "MB/s"))
	}

	// --- Host-centric (Figure 2a): a host app reads the corpus and
	// pushes each chunk to the co-processor, which tokenizes it. Data
	// crosses PCIe twice as many times as necessary and the host
	// mediates every transfer.
	{
		fab := pcie.New(256 << 20)
		ssd := nvme.New(fab, "nvme0", 0, fsDiskBytes)
		phi := fab.AddPhi("phi0", 0, 128<<20)
		if err := fs.Mkfs(ssd.Image(), 0); err != nil {
			panic(err)
		}
		var secs float64
		e := sim.NewEngine()
		e.Spawn("main", 0, func(p *sim.Proc) {
			fsys, err := fs.Mount(p, fab, block.NVMe{Dev: ssd})
			if err != nil {
				panic(err)
			}
			seedCorpus(p, fsys)
			hc := baseline.NewHostCentric(fab, fsys)
			pool := cpu.PhiPool()
			items := tiWork()
			next := 0
			files := map[int64]*fs.File{}
			start := p.Now()
			core.Parallel(p, tiWorkers, "indexer", func(i int, wp *sim.Proc) {
				ix := textindex.NewIndex()
				bufOff := phi.Mem.Alloc(tiChunk)
				for {
					if next >= len(items) {
						return
					}
					it := items[next]
					next++
					f, ok := files[it[0]]
					if !ok {
						var err error
						f, err = hc.Host.Open(wp, tiPath(int(it[0])))
						if err != nil {
							panic(err)
						}
						files[it[0]] = f
					}
					if err := hc.ReadToPhi(wp, f, it[1], tiChunk, pcie.Loc{Dev: phi, Off: bufOff}); err != nil {
						panic(err)
					}
					ix.AddDocument(wp, pool.Core(i), int32(it[0]), phi.Mem.Slice(bufOff, tiChunk))
				}
			})
			secs = (p.Now() - start).Seconds()
		})
		e.MustRun()
		rows = append(rows, row("fig17", "host-centric-phi", "indexing", mbs(totalBytes, secs), "MB/s"))
	}

	// --- Host: direct reads, 16 fat cores tokenize.
	{
		fab := pcie.New(256 << 20)
		ssd := nvme.New(fab, "nvme0", 0, fsDiskBytes)
		if err := fs.Mkfs(ssd.Image(), 0); err != nil {
			panic(err)
		}
		var secs float64
		e := sim.NewEngine()
		e.Spawn("main", 0, func(p *sim.Proc) {
			fsys, err := fs.Mount(p, fab, block.NVMe{Dev: ssd})
			if err != nil {
				panic(err)
			}
			seedCorpus(p, fsys)
			hd := &baseline.HostDirect{FS: fsys}
			pool := cpu.HostPool()
			items := tiWork()
			next := 0
			files := map[int64]*fs.File{}
			start := p.Now()
			core.Parallel(p, 24, "indexer", func(i int, wp *sim.Proc) {
				ix := textindex.NewIndex()
				loc, stage, put := fsys.Staging(tiChunk)
				defer put()
				for {
					if next >= len(items) {
						return
					}
					it := items[next]
					next++
					f, ok := files[it[0]]
					if !ok {
						var err error
						f, err = hd.Open(wp, tiPath(int(it[0])))
						if err != nil {
							panic(err)
						}
						files[it[0]] = f
					}
					if err := hd.Read(wp, f, it[1], tiChunk, loc); err != nil {
						panic(err)
					}
					ix.AddDocument(wp, pool.Core(i), int32(it[0]), stage[:tiChunk])
				}
			})
			secs = (p.Now() - start).Seconds()
		})
		e.MustRun()
		rows = append(rows, row("fig17", "host", "indexing", mbs(totalBytes, secs), "MB/s"))
	}
	return rows
}

// Image-search experiment geometry.
const (
	isVectors = 48 << 10 // 48K descriptors = 6 MB database
	isQueries = 40
	isPort    = 7400
)

// Fig18 reproduces the image-search application (§6.2): a similarity
// server on the co-processor — database loaded from the file system,
// queries over the network, parallel scan on the lean cores. Reported as
// queries/sec end to end (including database load).
func Fig18() []Row {
	dbBytes := workload.Features(99, isVectors)
	var rows []Row

	// --- Phi-Solros.
	{
		m := core.NewMachine(core.Config{Phis: 1, DiskBytes: fsDiskBytes, PhiMemBytes: 128 << 20})
		m.EnableNetwork()
		var secs float64
		m.MustRun(func(p *sim.Proc, mm *core.Machine) {
			// Seed the database file.
			f, err := mm.FS.Create(p, "/imgdb")
			if err != nil {
				panic(err)
			}
			if _, err := f.Write(p, 0, dbBytes); err != nil {
				panic(err)
			}
			phi := mm.Phis[0]
			phi.Net.Listen(p, isPort)
			done := sim.NewWaitGroup("imgsearch")
			done.Add(2)
			start := p.Now()
			p.Spawn("server", func(sp *sim.Proc) {
				defer sp.DoneWG(done)
				// Load the database through the Solros FS service.
				fd, err := phi.FS.Open(sp, "/imgdb", 0)
				if err != nil {
					panic(err)
				}
				buf := phi.FS.AllocBuffer(int64(len(dbBytes)))
				if _, err := phi.FS.Read(sp, fd, 0, buf, int64(len(dbBytes))); err != nil {
					panic(err)
				}
				db := &imagesearch.DB{Vectors: buf.Data}
				sock, err := phi.Net.Accept(sp, isPort)
				if err != nil {
					return
				}
				for q := 0; q < isQueries; q++ {
					query, err := sock.RecvFull(sp, workload.FeatureDim)
					if err != nil || len(query) != workload.FeatureDim {
						return
					}
					best, _ := db.SearchParallel(sp, phi.Pool, 61, query)
					sock.Send(sp, workload.EncodeU32(uint32(best)))
				}
			})
			p.Spawn("client", func(cp *sim.Proc) {
				defer cp.DoneWG(done)
				cp.Advance(100 * sim.Microsecond)
				conn, err := m.ClientStack.Dial(cp, m.HostStack, isPort)
				if err != nil {
					panic(err)
				}
				side := conn.Side(m.ClientStack)
				for q := 0; q < isQueries; q++ {
					side.Send(cp, workload.Query(dbBytes, q*101))
					reply, err := side.RecvFull(cp, 4)
					if err != nil || len(reply) != 4 {
						return
					}
					if got := int(workload.DecodeU32(reply)); got != (q*101)%isVectors {
						panic(fmt.Sprintf("fig18: wrong answer %d for query %d", got, q))
					}
				}
				side.Close(cp)
			})
			p.WaitWG(done)
			secs = (p.Now() - start).Seconds()
		})
		rows = append(rows, row("fig18", "phi-solros", "search", float64(isQueries)/secs, "queries/s"))
	}

	// --- Stock Phi: virtio load + bridged serialized TCP.
	{
		fab := pcie.New(256 << 20)
		ssd := nvme.New(fab, "nvme0", 0, fsDiskBytes)
		phi := fab.AddPhi("phi0", 0, 128<<20)
		if err := fs.Mkfs(ssd.Image(), 0); err != nil {
			panic(err)
		}
		vd := baseline.NewVirtioDisk(fab, phi, ssd)
		net := netstack.NewNetwork(fab)
		client := net.NewStack("client", cpu.Host, nil)
		server := net.NewStack("phi-server", cpu.Phi, phi)
		server.Serialized = true
		var secs float64
		e := sim.NewEngine()
		e.Spawn("main", 0, func(p *sim.Proc) {
			seedFS, err := fs.Mount(p, fab, block.NVMe{Dev: ssd})
			if err != nil {
				panic(err)
			}
			f, err := seedFS.Create(p, "/imgdb")
			if err != nil {
				panic(err)
			}
			if _, err := f.Write(p, 0, dbBytes); err != nil {
				panic(err)
			}
			seedFS.Sync(p)
			done := sim.NewWaitGroup("imgsearch")
			done.Add(2)
			l, err := server.Listen(isPort)
			if err != nil {
				panic(err)
			}
			start := p.Now()
			p.Spawn("server", func(sp *sim.Proc) {
				defer sp.DoneWG(done)
				pl, err := baseline.MountPhiLinux(sp, fab, vd, phi)
				if err != nil {
					panic(err)
				}
				file, err := pl.Open(sp, "/imgdb")
				if err != nil {
					panic(err)
				}
				bufOff := phi.Mem.Alloc(int64(len(dbBytes)))
				if err := pl.Read(sp, file, 0, int64(len(dbBytes)), pcie.Loc{Dev: phi, Off: bufOff}); err != nil {
					panic(err)
				}
				db := &imagesearch.DB{Vectors: phi.Mem.Slice(bufOff, int64(len(dbBytes)))}
				pool := cpu.PhiPool()
				conn, ok := l.Accept(sp)
				if !ok {
					return
				}
				side := conn.Side(server)
				for q := 0; q < isQueries; q++ {
					query, err := side.RecvFull(sp, workload.FeatureDim)
					if err != nil || len(query) != workload.FeatureDim {
						return
					}
					best, _ := db.SearchParallel(sp, pool, 61, query)
					side.Send(sp, workload.EncodeU32(uint32(best)))
				}
			})
			p.Spawn("client", func(cp *sim.Proc) {
				defer cp.DoneWG(done)
				cp.Advance(500 * sim.Microsecond)
				var conn *netstack.Conn
				var err error
				for try := 0; try < 100; try++ {
					conn, err = client.Dial(cp, server, isPort)
					if err == nil {
						break
					}
					cp.Advance(sim.Millisecond)
				}
				if err != nil {
					panic(err)
				}
				side := conn.Side(client)
				for q := 0; q < isQueries; q++ {
					side.Send(cp, workload.Query(dbBytes, q*101))
					if _, err := side.RecvFull(cp, 4); err != nil {
						return
					}
				}
				side.Close(cp)
			})
			p.WaitWG(done)
			secs = (p.Now() - start).Seconds()
		})
		e.MustRun()
		rows = append(rows, row("fig18", "phi-linux", "search", float64(isQueries)/secs, "queries/s"))
	}
	return rows
}

// Fig19 measures control-plane scalability (§6.3): aggregate file-system
// throughput as co-processor count grows, with one shared control-plane
// OS. Two regimes: device-bound P2P reads saturate the SSD; cache-hit
// reads scale with the proxy itself.
func Fig19() []Row {
	var rows []Row
	for _, regime := range []string{"nvme-p2p", "cache-hit"} {
		for _, phis := range []int{1, 2, 4} {
			const bs = 64 << 10
			const opsPerWorker = 24
			const workersPerPhi = 8
			m := core.NewMachine(core.Config{
				Phis:         phis,
				DiskBytes:    fsDiskBytes,
				PhiMemBytes:  64 << 20,
				CacheBytes:   64 << 20,
				ProxyWorkers: 8,
			})
			var secs float64
			m.MustRun(func(p *sim.Proc, mm *core.Machine) {
				// One 8 MB file per phi.
				for i := range mm.Phis {
					f, err := mm.FS.Create(p, fmt.Sprintf("/f%d", i))
					if err != nil {
						panic(err)
					}
					if err := f.Truncate(p, 8<<20); err != nil {
						panic(err)
					}
					if regime == "cache-hit" {
						if err := mm.FSProxy.Prefetch(p, fmt.Sprintf("/f%d", i)); err != nil {
							panic(err)
						}
					}
				}
				start := p.Now()
				done := sim.NewWaitGroup("fig19")
				done.Add(len(mm.Phis))
				for i, phi := range mm.Phis {
					i, phi := i, phi
					p.Spawn("phi-workers", func(pp *sim.Proc) {
						defer pp.DoneWG(done)
						flags := uint32(0)
						if regime == "cache-hit" {
							flags = ninep.OBuffer
						}
						core.Parallel(pp, workersPerPhi, "reader", func(w int, wp *sim.Proc) {
							fd, err := phi.FS.Open(wp, fmt.Sprintf("/f%d", i), flags)
							if err != nil {
								panic(err)
							}
							buf := phi.FS.AllocBuffer(bs)
							offs := workload.Offsets(int64(i*100+w), 8<<20, bs, opsPerWorker)
							for _, off := range offs {
								if _, err := phi.FS.Read(wp, fd, off, buf, bs); err != nil {
									panic(err)
								}
							}
						})
					})
				}
				p.WaitWG(done)
				secs = (p.Now() - start).Seconds()
			})
			total := int64(phis) * workersPerPhi * opsPerWorker * bs
			rows = append(rows, row("fig19", regime, fmt.Sprintf("%d", phis), gbs(total, secs), "GB/s"))
		}
	}
	return rows
}
