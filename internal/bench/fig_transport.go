package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"solros/internal/cpu"
	"solros/internal/model"
	"solros/internal/pcie"
	"solros/internal/queue"
	"solros/internal/ringbuf"
	"solros/internal/sim"
	"solros/internal/transport"
)

// Fig4 characterizes the PCIe fabric (the paper's calibration figure):
// bandwidth of DMA and load/store transfers in both directions for sizes
// 64 B - 8 MB. These series are what every other experiment's data paths
// are built from.
func Fig4() []Row {
	fab := pcie.New(64 << 20)
	phi := fab.AddPhi("phi0", 0, 32<<20)
	sizes := []int64{64, 512, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 1 << 20, 4 << 20, 8 << 20}
	var rows []Row
	for _, dir := range []string{"phi->host", "host->phi"} {
		src, dst := pcie.Loc{Dev: phi}, pcie.Loc{}
		if dir == "host->phi" {
			src, dst = pcie.Loc{}, pcie.Loc{Dev: phi}
		}
		for _, mech := range []string{"dma-host-init", "dma-phi-init", "memcpy-host", "memcpy-phi"} {
			for _, n := range sizes {
				var t sim.Time
				switch mech {
				case "dma-host-init":
					t = fab.DMATime(cpu.Host, src, dst, n)
				case "dma-phi-init":
					t = fab.DMATime(cpu.Phi, src, dst, n)
				case "memcpy-host":
					t = pcie.MemcpyTime(cpu.Host, n)
				case "memcpy-phi":
					t = pcie.MemcpyTime(cpu.Phi, n)
				}
				rows = append(rows, row("fig4", dir+"/"+mech, sizeLabel(n), mbs(n, t.Seconds()), "MB/s"))
			}
		}
	}
	return rows
}

// fig8Threads is the thread axis for the scalability experiments.
var fig8Threads = []int{1, 2, 4, 8, 16, 32, 61}

// Fig8 is the real-concurrency enqueue-dequeue pair benchmark (§6.1.1):
// 64-byte elements, the combining ring vs the two-lock queue under ticket
// and MCS spinlocks. It runs actual goroutines and measures wall-clock
// throughput, so absolute numbers depend on the machine; the claim is the
// ordering at high thread counts.
func Fig8() []Row {
	const duration = 150 * time.Millisecond
	payload := make([]byte, 64)
	var rows []Row
	for _, algo := range []string{"solros-combining", "two-lock-ticket", "two-lock-mcs"} {
		for _, threads := range fig8Threads {
			pairs := runPairBenchmark(algo, threads, duration, payload)
			rows = append(rows, row("fig8", algo, fmt.Sprintf("%d", threads),
				float64(pairs)/duration.Seconds()/1000, "Kpairs/s"))
		}
	}
	return rows
}

// runPairBenchmark spins `threads` goroutines each alternating enqueue and
// dequeue for the duration, returning completed pairs.
func runPairBenchmark(algo string, threads int, d time.Duration, payload []byte) int64 {
	var stop atomic.Bool
	var pairs atomic.Int64

	var enqueue func() bool
	var dequeue func() bool
	switch algo {
	case "solros-combining":
		r := ringbuf.New(1<<20, 4096, model.CombineBatch)
		enqueue = func() bool {
			e, err := r.Enqueue(len(payload))
			if err != nil {
				return false
			}
			e.CopyIn(payload)
			e.SetReady()
			return true
		}
		dequeue = func() bool {
			e, err := r.Dequeue()
			if err != nil {
				return false
			}
			e.SetDone()
			return true
		}
	case "two-lock-ticket", "two-lock-mcs":
		var q *queue.TwoLock
		if algo == "two-lock-ticket" {
			q = queue.NewTwoLockTicket()
		} else {
			q = queue.NewTwoLockMCS()
		}
		enqueue = func() bool { q.Enqueue(payload); return true }
		dequeue = func() bool { _, ok := q.Dequeue(); return ok }
	default:
		panic("unknown algo " + algo)
	}

	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := int64(0)
			for !stop.Load() {
				if !enqueue() {
					runtime.Gosched()
					continue
				}
				for !dequeue() {
					if stop.Load() {
						pairs.Add(local)
						return
					}
					runtime.Gosched()
				}
				local++
			}
			pairs.Add(local)
		}()
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	return pairs.Load()
}

// ringStream measures one-way message throughput over a PCIe ring in
// virtual time: senders on one end, one receiver on the other.
func ringStream(phiSends bool, senders, msgSize, perSender int, opt transport.Options) float64 {
	fab := pcie.New(256 << 20)
	phi := fab.AddPhi("phi0", 0, 256<<20)
	opt.CapBytes = 4 << 20
	if int64(8*msgSize) > opt.CapBytes {
		opt.CapBytes = int64(8 * msgSize)
	}
	opt.Slots = 2048
	var master *pcie.Device
	if phiSends {
		master = phi // §4.2.2: master at the sender side
	}
	ring := transport.NewRing(fab, master, opt)
	var recvPort *transport.Port
	if phiSends {
		recvPort = ring.Port(nil, cpu.Host)
	} else {
		recvPort = ring.Port(phi, cpu.Phi)
	}
	total := senders * perSender
	var end sim.Time
	e := sim.NewEngine()
	for s := 0; s < senders; s++ {
		var sp *transport.Port
		if phiSends {
			sp = ring.Port(phi, cpu.Phi)
		} else {
			sp = ring.Port(nil, cpu.Host)
		}
		e.Spawn("sender", 0, func(p *sim.Proc) {
			msg := make([]byte, msgSize)
			for i := 0; i < perSender; i++ {
				sp.Send(p, msg)
			}
		})
	}
	e.Spawn("receiver", 0, func(p *sim.Proc) {
		for i := 0; i < total; i++ {
			if _, ok := recvPort.Recv(p); !ok {
				return
			}
		}
		end = p.Now()
	})
	e.MustRun()
	return float64(total) / end.Seconds()
}

// ringStreamMasterHost measures a phi->host stream over a ring whose
// master (storage) lives in host memory — the wrong placement per §4.2.2,
// used as an ablation.
func ringStreamMasterHost(senders, msgSize, perSender int) float64 {
	fab := pcie.New(256 << 20)
	phi := fab.AddPhi("phi0", 0, 256<<20)
	ring := transport.NewRing(fab, nil, transport.Options{CapBytes: 4 << 20, Slots: 2048})
	recvPort := ring.Port(nil, cpu.Host)
	total := senders * perSender
	var end sim.Time
	e := sim.NewEngine()
	for s := 0; s < senders; s++ {
		sp := ring.Port(phi, cpu.Phi)
		e.Spawn("sender", 0, func(p *sim.Proc) {
			msg := make([]byte, msgSize)
			for i := 0; i < perSender; i++ {
				sp.Send(p, msg)
			}
		})
	}
	e.Spawn("receiver", 0, func(p *sim.Proc) {
		for i := 0; i < total; i++ {
			if _, ok := recvPort.Recv(p); !ok {
				return
			}
		}
		end = p.Now()
	})
	e.MustRun()
	return float64(total) / end.Seconds()
}

// Fig9 compares lazy vs eager control-variable replication across thread
// counts, both directions, 64-byte elements (§6.1.1, "Optimization for
// PCIe").
func Fig9() []Row {
	var rows []Row
	per := 400
	for _, dir := range []struct {
		name     string
		phiSends bool
	}{{"phi->host", true}, {"host->phi", false}} {
		for _, mode := range []struct {
			name string
			m    transport.UpdateMode
		}{{"lazy", transport.Lazy}, {"eager", transport.Eager}} {
			for _, threads := range fig8Threads {
				ops := ringStream(dir.phiSends, threads, 64, per, transport.Options{Update: mode.m})
				rows = append(rows, row("fig9", dir.name+"/"+mode.name,
					fmt.Sprintf("%d", threads), ops/1000, "Kops/s"))
			}
		}
	}
	return rows
}

// Fig10 sweeps element size with eight concurrent senders under the three
// copy mechanisms (§6.1.1, Figure 10): memcpy wins small, DMA wins large,
// adaptive tracks the winner.
func Fig10() []Row {
	sizes := []int64{512, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 1 << 20, 4 << 20}
	var rows []Row
	for _, mech := range []struct {
		name string
		m    pcie.Mech
	}{{"memcpy", pcie.Memcpy}, {"dma", pcie.DMA}, {"adaptive", pcie.Adaptive}} {
		for _, size := range sizes {
			per := 64
			if size >= 1<<20 {
				per = 8
			}
			ops := ringStream(true, 8, int(size), per, transport.Options{Copy: mech.m})
			rows = append(rows, row("fig10", mech.name, sizeLabel(size),
				gbs(int64(float64(size)*ops), 1), "GB/s"))
		}
	}
	return rows
}
