package bench

import (
	"fmt"

	"solros/internal/baseline"
	"solros/internal/block"
	"solros/internal/core"
	"solros/internal/fs"
	"solros/internal/model"
	"solros/internal/nvme"
	"solros/internal/pcie"
	"solros/internal/sim"
	"solros/internal/workload"
)

// Storage experiment geometry. The paper uses a 4 GB file on a 1.2 TB
// SSD; we scale to 64 MB on a 96 MB disk — random-read shape is size-
// independent once the file dwarfs every cache in play.
const (
	fsFileBytes = 64 << 20
	fsDiskBytes = 96 << 20
	// fsPointBytes is the I/O volume per measured point.
	fsPointBytes = 128 << 20
)

var fsBlockSizes = []int64{32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20}

func opsFor(threads int, bs int64) int {
	ops := int(fsPointBytes / (int64(threads) * bs))
	if ops < 2 {
		ops = 2
	}
	return ops
}

// fioPoint measures aggregate random read/write throughput in GB/s for
// one (system, threads, block size) cell.
type fioSystem interface {
	// run executes the whole matrix measurement for this system.
	run(write bool, threads int, bs int64) float64
	name() string
}

// --- Phi-Solros -------------------------------------------------------------

type solrosFio struct {
	label     string
	phis      int
	usePhi    int
	forceP2P  bool
	coalesce  bool
	diskBytes int64
}

func (s *solrosFio) name() string { return s.label }

func (s *solrosFio) run(write bool, threads int, bs int64) float64 {
	m := core.NewMachine(core.Config{
		Phis:         s.phis,
		DiskBytes:    s.diskBytes,
		PhiMemBytes:  int64(threads)*bs + (64 << 20),
		HostRAMBytes: 256 << 20,
		ForceP2P:     s.forceP2P,
		CoalesceOff:  !s.coalesce,
		ProxyWorkers: 8,
	})
	var secs float64
	m.MustRun(func(p *sim.Proc, mm *core.Machine) {
		phi := mm.Phis[s.usePhi]
		fd, err := phi.FS.Open(p, "/bench", 2 /* OCreate */)
		if err != nil {
			panic(err)
		}
		if err := mustTruncate(p, mm, "/bench"); err != nil {
			panic(err)
		}
		ops := opsFor(threads, bs)
		offs := workload.Offsets(42, fsFileBytes, bs, threads*ops)
		start := p.Now()
		core.Parallel(p, threads, "fio", func(i int, wp *sim.Proc) {
			buf := phi.FS.AllocBuffer(bs)
			for k := 0; k < ops; k++ {
				off := offs[i*ops+k]
				var err error
				if write {
					_, err = phi.FS.Write(wp, fd, off, buf, bs)
				} else {
					_, err = phi.FS.Read(wp, fd, off, buf, bs)
				}
				if err != nil {
					panic(err)
				}
			}
		})
		secs = (p.Now() - start).Seconds()
	})
	return gbs(int64(threads*opsFor(threads, bs))*bs, secs)
}

// mustTruncate grows the benchmark file to fsFileBytes via the host FS
// (seeding, not part of the measurement).
func mustTruncate(p *sim.Proc, m *core.Machine, path string) error {
	f, err := m.FS.Open(p, path)
	if err != nil {
		return err
	}
	return f.Truncate(p, fsFileBytes)
}

// --- Host -------------------------------------------------------------------

type hostFio struct{}

func (hostFio) name() string { return "host" }

func (hostFio) run(write bool, threads int, bs int64) float64 {
	fab := pcie.New(256 << 20)
	ssd := nvme.New(fab, "nvme0", 0, fsDiskBytes)
	if err := fs.Mkfs(ssd.Image(), 0); err != nil {
		panic(err)
	}
	var secs float64
	e := sim.NewEngine()
	e.Spawn("main", 0, func(p *sim.Proc) {
		fsys, err := fs.Mount(p, fab, block.NVMe{Dev: ssd})
		if err != nil {
			panic(err)
		}
		hd := &baseline.HostDirect{FS: fsys}
		f, err := hd.Create(p, "/bench")
		if err != nil {
			panic(err)
		}
		if err := f.Truncate(p, fsFileBytes); err != nil {
			panic(err)
		}
		ops := opsFor(threads, bs)
		offs := workload.Offsets(42, fsFileBytes, bs, threads*ops)
		start := p.Now()
		core.Parallel(p, threads, "fio", func(i int, wp *sim.Proc) {
			loc, _, put := fsys.Staging(bs)
			defer put()
			for k := 0; k < ops; k++ {
				off := offs[i*ops+k]
				var err error
				if write {
					err = hd.Write(wp, f, off, bs, loc)
				} else {
					err = hd.Read(wp, f, off, bs, loc)
				}
				if err != nil {
					panic(err)
				}
			}
		})
		secs = (p.Now() - start).Seconds()
	})
	e.MustRun()
	return gbs(int64(threads*opsFor(threads, bs))*bs, secs)
}

// --- Phi-Linux (virtio) -------------------------------------------------------

type virtioFio struct{}

func (virtioFio) name() string { return "phi-virtio" }

func (virtioFio) run(write bool, threads int, bs int64) float64 {
	fab := pcie.New(256 << 20)
	ssd := nvme.New(fab, "nvme0", 0, fsDiskBytes)
	phi := fab.AddPhi("phi0", 0, int64(threads)*bs+(64<<20))
	if err := fs.Mkfs(ssd.Image(), 0); err != nil {
		panic(err)
	}
	vd := baseline.NewVirtioDisk(fab, phi, ssd)
	var secs float64
	e := sim.NewEngine()
	e.Spawn("main", 0, func(p *sim.Proc) {
		pl, err := baseline.MountPhiLinux(p, fab, vd, phi)
		if err != nil {
			panic(err)
		}
		f, err := pl.Create(p, "/bench")
		if err != nil {
			panic(err)
		}
		if err := f.Truncate(p, fsFileBytes); err != nil {
			panic(err)
		}
		ops := opsFor(threads, bs)
		offs := workload.Offsets(42, fsFileBytes, bs, threads*ops)
		start := p.Now()
		core.Parallel(p, threads, "fio", func(i int, wp *sim.Proc) {
			buf := pcie.Loc{Dev: phi, Off: phi.Mem.Alloc(bs)}
			for k := 0; k < ops; k++ {
				off := offs[i*ops+k]
				var err error
				if write {
					err = pl.Write(wp, f, off, bs, buf)
				} else {
					err = pl.Read(wp, f, off, bs, buf)
				}
				if err != nil {
					panic(err)
				}
			}
		})
		secs = (p.Now() - start).Seconds()
	})
	e.MustRun()
	return gbs(int64(threads*opsFor(threads, bs))*bs, secs)
}

// --- Phi-Linux (NFS) ----------------------------------------------------------

type nfsFio struct{}

func (nfsFio) name() string { return "phi-nfs" }

func (nfsFio) run(write bool, threads int, bs int64) float64 {
	fab := pcie.New(256 << 20)
	ssd := nvme.New(fab, "nvme0", 0, fsDiskBytes)
	phi := fab.AddPhi("phi0", 0, int64(threads)*bs+(64<<20))
	if err := fs.Mkfs(ssd.Image(), 0); err != nil {
		panic(err)
	}
	var secs float64
	e := sim.NewEngine()
	e.Spawn("main", 0, func(p *sim.Proc) {
		fsys, err := fs.Mount(p, fab, block.NVMe{Dev: ssd})
		if err != nil {
			panic(err)
		}
		nfs := baseline.NewNFS(fab, fsys, phi)
		f, err := nfs.Create(p, "/bench")
		if err != nil {
			panic(err)
		}
		if err := f.Truncate(p, fsFileBytes); err != nil {
			panic(err)
		}
		ops := opsFor(threads, bs)
		offs := workload.Offsets(42, fsFileBytes, bs, threads*ops)
		start := p.Now()
		core.Parallel(p, threads, "fio", func(i int, wp *sim.Proc) {
			buf := pcie.Loc{Dev: phi, Off: phi.Mem.Alloc(bs)}
			for k := 0; k < ops; k++ {
				off := offs[i*ops+k]
				var err error
				if write {
					err = nfs.Write(wp, f, off, bs, buf)
				} else {
					err = nfs.Read(wp, f, off, bs, buf)
				}
				if err != nil {
					panic(err)
				}
			}
		})
		secs = (p.Now() - start).Seconds()
	})
	e.MustRun()
	return gbs(int64(threads*opsFor(threads, bs))*bs, secs)
}

func newSolrosFio() *solrosFio {
	return &solrosFio{label: "phi-solros", phis: 1, coalesce: true, diskBytes: fsDiskBytes}
}

func newSolrosCrossNUMAFio() *solrosFio {
	// Two phis so phi1 lands on socket 1; ForceP2P disables the
	// control plane's buffered fallback, exposing the QPI relay cap.
	return &solrosFio{label: "phi-solros-xnuma-p2p", phis: 2, usePhi: 1, forceP2P: true, coalesce: true, diskBytes: fsDiskBytes}
}

// Fig1a is the headline storage figure: random read throughput vs block
// size at 8 threads for all five architectures.
func Fig1a() []Row {
	systems := []fioSystem{
		hostFio{},
		newSolrosFio(),
		newSolrosCrossNUMAFio(),
		virtioFio{},
		nfsFio{},
	}
	var rows []Row
	for _, sys := range systems {
		for _, bs := range fsBlockSizes {
			v := sys.run(false, 8, bs)
			rows = append(rows, row("fig1a", sys.name(), sizeLabel(bs), v, "GB/s"))
		}
	}
	return rows
}

var fsThreadAxis = []int{1, 4, 8, 32, 61}

// figMatrix runs the Figure 11/12 thread x block-size matrix.
func figMatrix(fig string, write bool) []Row {
	systems := []fioSystem{hostFio{}, newSolrosFio(), virtioFio{}, nfsFio{}}
	var rows []Row
	for _, sys := range systems {
		for _, threads := range fsThreadAxis {
			for _, bs := range fsBlockSizes {
				v := sys.run(write, threads, bs)
				rows = append(rows, row(fig,
					fmt.Sprintf("%s/t=%d", sys.name(), threads), sizeLabel(bs), v, "GB/s"))
			}
		}
	}
	return rows
}

// Fig11 is the random-read throughput matrix (§6.1.2).
func Fig11() []Row { return figMatrix("fig11", false) }

// Fig12 is the random-write throughput matrix (§6.1.2).
func Fig12() []Row { return figMatrix("fig12", true) }

// Fig13 decomposes the 512 KB random-read latency (a) and the 64 B TCP
// round trip (b) into layers, comparing Solros against the stock Phi.
func Fig13() []Row {
	rows := fig13FS()
	return append(rows, fig13Net()...)
}

// fig13FS measures per-512KB-read latency and splits it into storage
// (flash service), transport (PCIe + driver), and file-system CPU layers
// using the device's busy-time accounting.
func fig13FS() []Row {
	const bs = 512 << 10
	const ops = 64

	// Solros path.
	m := core.NewMachine(core.Config{DiskBytes: fsDiskBytes, PhiMemBytes: 96 << 20, ProxyWorkers: 1})
	var solTotal, solStorage sim.Time
	m.MustRun(func(p *sim.Proc, mm *core.Machine) {
		phi := mm.Phis[0]
		fd, _ := phi.FS.Open(p, "/bench", 2)
		mustTruncate(p, mm, "/bench")
		offs := workload.Offsets(7, fsFileBytes, bs, ops)
		buf := phi.FS.AllocBuffer(bs)
		st0 := mm.SSD.Stats()
		_ = st0
		startBusy := flashBusy(mm.SSD)
		start := p.Now()
		for _, off := range offs {
			if _, err := phi.FS.Read(p, fd, off, buf, bs); err != nil {
				panic(err)
			}
		}
		solTotal = (p.Now() - start) / ops
		solStorage = (flashBusy(mm.SSD) - startBusy) / ops
	})
	solFS := sim.Time(model.FSStubCost + model.FSProxyCost)
	solTransport := solTotal - solStorage - solFS
	if solTransport < 0 {
		solTransport = 0
	}

	// Stock Phi (virtio) path.
	fab := pcie.New(256 << 20)
	ssd := nvme.New(fab, "nvme0", 0, fsDiskBytes)
	phi := fab.AddPhi("phi0", 0, 96<<20)
	fs.Mkfs(ssd.Image(), 0)
	vd := baseline.NewVirtioDisk(fab, phi, ssd)
	var vTotal, vStorage sim.Time
	e := sim.NewEngine()
	e.Spawn("main", 0, func(p *sim.Proc) {
		pl, err := baseline.MountPhiLinux(p, fab, vd, phi)
		if err != nil {
			panic(err)
		}
		f, _ := pl.Create(p, "/bench")
		f.Truncate(p, fsFileBytes)
		offs := workload.Offsets(7, fsFileBytes, bs, ops)
		buf := pcie.Loc{Dev: phi, Off: phi.Mem.Alloc(bs)}
		startBusy := flashBusy(ssd)
		start := p.Now()
		for _, off := range offs {
			if err := pl.Read(p, f, off, bs, buf); err != nil {
				panic(err)
			}
		}
		vTotal = (p.Now() - start) / ops
		vStorage = (flashBusy(ssd) - startBusy) / ops
	})
	e.MustRun()
	vFS := sim.Time(model.FSFullCostPhi)
	vTransport := vTotal - vStorage - vFS
	if vTransport < 0 {
		vTransport = 0
	}

	ms := func(t sim.Time) float64 { return t.Seconds() * 1e3 }
	return []Row{
		row("fig13a", "phi-virtio", "storage", ms(vStorage), "ms"),
		row("fig13a", "phi-virtio", "block/transport", ms(vTransport), "ms"),
		row("fig13a", "phi-virtio", "file-system", ms(vFS), "ms"),
		row("fig13a", "phi-virtio", "total", ms(vTotal), "ms"),
		row("fig13a", "phi-solros", "storage", ms(solStorage), "ms"),
		row("fig13a", "phi-solros", "proxy/transport", ms(solTransport), "ms"),
		row("fig13a", "phi-solros", "fs-stub", ms(solFS), "ms"),
		row("fig13a", "phi-solros", "total", ms(solTotal), "ms"),
	}
}

// flashBusy sums the SSD's read+write backend busy time.
func flashBusy(d *nvme.Device) sim.Time {
	return d.FlashBusy()
}
