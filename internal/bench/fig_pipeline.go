package bench

import (
	"solros/internal/core"
	"solros/internal/ninep"
	"solros/internal/sim"
)

// Pipelined delegated-I/O experiment (ISSUE 2): large sequential buffered
// reads through one co-processor, comparing the serial path against each
// pipelining mechanism and their combination. The file is read cold, so
// every byte pays both the NVMe leg and the PCIe leg — exactly the case
// where overlapping them, windowing chunk RPCs, and batching ring
// dequeues should compound.
const (
	pipeFileBytes = 32 << 20
	pipeDiskBytes = 64 << 20
)

var pipeSizes = []int64{512 << 10, 1 << 20, 2 << 20, 4 << 20}

// Pipeline measures GB/s for each (config, read size) cell.
func Pipeline() []Row {
	configs := []struct {
		name                     string
		pipeline, batch, overlap bool
	}{
		{"sync", false, false, false},
		{"+window", true, false, false},
		{"+batch", false, true, false},
		{"+overlap", false, false, true},
		{"pipelined", true, true, true},
	}
	var rows []Row
	for _, c := range configs {
		for _, bs := range pipeSizes {
			v := pipePoint(c.pipeline, c.batch, c.overlap, bs)
			rows = append(rows, row("pipeline", c.name, sizeLabel(bs), v, "GB/s"))
		}
	}
	return rows
}

// pipePoint reads the whole file once, sequentially, in bs-sized delegated
// reads on an O_BUFFER descriptor (forcing the buffered path the tentpole
// optimizes), and reports cold-read throughput.
func pipePoint(pipeline, batch, overlap bool, bs int64) float64 {
	m := core.NewMachine(core.Config{
		DiskBytes:    pipeDiskBytes,
		PhiMemBytes:  bs + (64 << 20),
		ProxyWorkers: 8,
		Pipeline:     pipeline,
		BatchRecv:    batch,
		Overlap:      overlap,
	})
	var secs float64
	m.MustRun(func(p *sim.Proc, mm *core.Machine) {
		phi := mm.Phis[0]
		fd, err := phi.FS.Open(p, "/pipe", ninep.OCreate|ninep.OBuffer)
		if err != nil {
			panic(err)
		}
		f, err := mm.FS.Open(p, "/pipe")
		if err != nil {
			panic(err)
		}
		if err := f.Truncate(p, pipeFileBytes); err != nil {
			panic(err)
		}
		buf := phi.FS.AllocBuffer(bs)
		start := p.Now()
		for off := int64(0); off+bs <= pipeFileBytes; off += bs {
			if _, err := phi.FS.Read(p, fd, off, buf, bs); err != nil {
				panic(err)
			}
		}
		secs = (p.Now() - start).Seconds()
	})
	return gbs(pipeFileBytes, secs)
}
