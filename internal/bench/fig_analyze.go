package bench

import (
	"bytes"
	"fmt"
	"strconv"

	"solros/internal/apps/kvstore"
	"solros/internal/core"
	"solros/internal/sim"
	"solros/internal/telemetry"
	"solros/internal/telemetry/analyze"
	"solros/internal/workload"
)

// fig-analyze: the trace-analytics engine against a run with a planted
// anomaly (ISSUE 10). The KV store serves three tenants; the smallest
// ("analytics") is rigged to be the tail: its values are 32x larger than
// everyone else's and every one of its keys is pinned — by rejection
// sampling over key indices — onto one shard. Every request opens a
// "workload.request" root span tagged with tenant, owner shard, and
// client queueing delay, and the KV wire protocol carries the trace
// context to the server, so each request is one causal tree from the
// client through the TCP proxy, the shard server, and the delegated FS
// path. The analyzer indexes completed trees and its differential blame
// report must name the planted tenant and shard in its top two entries.
//
// The overhead point is the claim that analysis is free: the analyzer
// only observes completed spans, so the virtual clock of a run with
// Analyze on is identical to the same run with tracing alone. Both runs
// execute and the overhead percentage — gated at < 1% by benchdiff, and
// expected to be exactly 0 — is computed from their final virtual times.

const (
	analyzePort         = 7500
	analyzeValBytes     = 256
	analyzeHotValBytes  = 8192
	analyzeConnsPerShrd = 4
	analyzePhis         = 4
	// analyzeHotShard is the shard the analytics tenant is pinned to.
	analyzeHotShard = 2
	// analyzeTenantID is the analytics tenant's index in analyzeTenants.
	analyzeTenantID = 2
)

// analyzeTenants builds the three-tenant mix: a read-mostly frontend, an
// update-heavy batch tenant, and the small hot analytics tenant.
func analyzeTenants() []workload.Tenant {
	return []workload.Tenant{
		{Name: "frontend", Mix: workload.MixFor('B'), Keys: 512, Share: 5},
		{Name: "batch", Mix: workload.MixFor('A'), Keys: 128, Share: 2},
		{Name: "analytics", Mix: workload.MixFor('A'), Keys: 48, Share: 1},
	}
}

// analyzeOp is one dispatched request waiting on a shard queue.
type analyzeOp struct {
	key     string
	tenant  int
	write   bool
	arrival sim.Time
	idx     int
}

// analyzeResult is one run's outcome plus the analysis artifacts.
type analyzeResult struct {
	serveResult
	vt        sim.Time // final virtual time of the whole run
	traces    int      // records in the trace index
	report    *analyze.BlameReport
	blameText string // deterministic rendering of report + rollups
	hotShard  string // hot shard named by the detector ("" = none)
	hotTenant string
	topHits   int // of the top-2 blame entries, how many name the plant
}

// analyzeLoad picks the offered rate and op count.
func analyzeLoad() (float64, int) {
	if Quick {
		return 60e3, 600
	}
	return 120e3, 2400
}

// Analyze produces the fig-analyze table: the planted-anomaly run with
// the analyzer on, plus the tracing-only twin for the overhead claim.
func Analyze() []Row {
	load, n := analyzeLoad()
	base := analyzeRun(false, load, n)
	full := analyzeRun(true, load, n)
	x := fmt.Sprintf("%gk/s", load/1000)
	rows := []Row{
		row("fig-analyze", "tput", x, full.achievedKops, "Kops/s"),
		row("fig-analyze", "p50", x, us(full.p50), "us"),
		row("fig-analyze", "p99", x, us(full.p99), "us"),
		row("fig-analyze", "traces", x, float64(full.traces), "records"),
		row("fig-analyze", "blame top-2 hits", x, float64(full.topHits), "of 2"),
		row("fig-analyze", "overhead", x, analyzeOverheadPct(base, full), "%"),
		row("fig-analyze", "digest", "analyze", float64(full.digest), "fnv32"),
		row("fig-analyze", "digest", "tracing-only", float64(base.digest), "fnv32"),
	}
	return rows
}

// analyzeOverheadPct is the virtual-time cost of arming the analyzer on
// top of tracing, as a percentage. Zero when the analyzer is passive, as
// designed.
func analyzeOverheadPct(base, full analyzeResult) float64 {
	if base.vt <= 0 {
		return 0
	}
	return float64(full.vt-base.vt) / float64(base.vt) * 100
}

// analyzeRun drives one planted-anomaly machine. With analyzed false the
// machine runs tracing alone — the overhead baseline; the driver is
// byte-identical either way so the two virtual clocks are comparable.
func analyzeRun(analyzed bool, ratePerSec float64, n int) analyzeResult {
	cfg := core.Config{Phis: analyzePhis, Tracing: true}
	if analyzed {
		cfg.Analyze = true
		cfg.AnalyzeRoots = []string{"workload.request"}
	}
	m := core.NewMachine(cfg)
	m.EnableNetwork()
	phis := len(m.Phis)
	tenants := analyzeTenants()
	tenantNames := make([]string, len(tenants))
	for i := range tenants {
		tenantNames[i] = tenants[i].Name
	}

	// Pin table: the analytics tenant's j-th key is remapped to the j-th
	// key index whose name hashes to the hot shard, so its entire keyspace
	// — and with it every slow 8 KB request — lands on one shard.
	pin := make([]int, tenants[analyzeTenantID].Keys)
	for j, k := 0, 0; j < len(pin); k++ {
		if kvstore.OwnerShard(workload.KeyName(analyzeTenantID, k), phis) == analyzeHotShard {
			pin[j] = k
			j++
		}
	}
	keyFor := func(tenant, key int) string {
		if tenant == analyzeTenantID {
			return workload.KeyName(tenant, pin[key])
		}
		return workload.KeyName(tenant, key)
	}

	var res analyzeResult
	m.MustRun(func(p *sim.Proc, mm *core.Machine) {
		tel := mm.Telemetry()
		mm.TCPProxy.Balance = kvstore.Balancer()
		shards := make([]*kvstore.Shard, phis)
		servers := make([]*kvstore.Server, phis)
		serversDone := sim.NewWaitGroup("kv-servers")
		for i, phi := range mm.Phis {
			if err := phi.Net.Listen(p, analyzePort); err != nil {
				panic(err)
			}
			shards[i] = kvstore.NewShard(mm, i, kvstore.Options{})
			if err := shards[i].Open(p); err != nil {
				panic(err)
			}
			servers[i] = kvstore.NewServer(shards[i], phi.Net, analyzePort)
			servers[i].Tenants = tenantNames
			serversDone.Add(1)
			sv := servers[i]
			p.Spawn(fmt.Sprintf("kv-server-%d", i), func(sp *sim.Proc) {
				defer sp.DoneWG(serversDone)
				if err := sv.Run(sp); err != nil {
					panic(err)
				}
			})
		}

		g := workload.NewMultiGenerator(Seed, tenants)
		val := bytes.Repeat([]byte("v"), analyzeValBytes)
		hotVal := bytes.Repeat([]byte("V"), analyzeHotValBytes)
		valFor := func(tenant int) []byte {
			if tenant == analyzeTenantID {
				return hotVal
			}
			return val
		}

		// Preload through the delegated FS path; remember one key per
		// shard for connection binding.
		bindKey := make([]string, phis)
		for t := range tenants {
			for k := 0; k < tenants[t].Keys; k++ {
				key := keyFor(t, k)
				sh := kvstore.OwnerShard(key, phis)
				if err := shards[sh].Put(p, key, valFor(t)); err != nil {
					panic(err)
				}
				if bindKey[sh] == "" {
					bindKey[sh] = key
				}
			}
		}

		ops := g.Ops(n)
		gaps := workload.Arrivals(Seed+1, ratePerSec, n)
		queues := make([][]analyzeOp, phis)
		conds := make([]*sim.Cond, phis)
		for i := range conds {
			conds[i] = sim.NewCond(fmt.Sprintf("kv-q-%d", i))
		}
		dispatchDone := false
		latencies := make([]sim.Time, n)
		var firstArrival, lastDone sim.Time

		p.Spawn("kv-dispatch", func(dp *sim.Proc) {
			t := dp.Now()
			for i, op := range ops {
				t += sim.Time(gaps[i])
				dp.AdvanceTo(t)
				key := keyFor(op.Tenant, op.Key)
				sh := kvstore.OwnerShard(key, phis)
				queues[sh] = append(queues[sh], analyzeOp{
					key:     key,
					tenant:  op.Tenant,
					write:   op.Kind != workload.OpRead,
					arrival: t,
					idx:     i,
				})
				dp.Signal(conds[sh])
				if i == 0 {
					firstArrival = t
				}
			}
			dispatchDone = true
			for _, c := range conds {
				dp.Broadcast(c)
			}
		})

		lat := tel.Histogram("workload.latency")
		rootSalt := uint64(Seed)
		workersDone := sim.NewWaitGroup("kv-workers")
		for sh := 0; sh < phis; sh++ {
			sh := sh
			for w := 0; w < analyzeConnsPerShrd; w++ {
				workersDone.Add(1)
				p.Spawn(fmt.Sprintf("kv-worker-%d-%d", sh, w), func(wp *sim.Proc) {
					defer wp.DoneWG(workersDone)
					conn, err := mm.ClientStack.Dial(wp, mm.HostStack, analyzePort)
					if err != nil {
						panic(err)
					}
					side := conn.Side(mm.ClientStack)
					cl := kvstore.NewClient(side)
					cl.EnableTracing(tel)
					if _, _, err := cl.Get(wp, bindKey[sh]); err != nil {
						panic(err)
					}
					for {
						if len(queues[sh]) == 0 {
							if dispatchDone {
								break
							}
							wp.Wait(conds[sh])
							continue
						}
						op := queues[sh][0]
						queues[sh] = queues[sh][1:]
						qwait := wp.Now() - op.arrival
						if qwait < 0 {
							qwait = 0
						}
						// One root span per request: the causal tree every
						// downstream span joins, carrying the attribution
						// dimensions the analyzer indexes by.
						root := tel.StartCtx(wp, "workload.request",
							telemetry.RootCtx(rootSalt, uint64(op.idx)))
						root.Tag("tenant", tenantNames[op.tenant])
						root.TagInt("shard", int64(sh))
						root.TagInt("qwait_ns", int64(qwait))
						if op.write {
							err = cl.Put(wp, op.key, valFor(op.tenant))
						} else {
							_, _, err = cl.Get(wp, op.key)
						}
						if err != nil {
							panic(err)
						}
						done := wp.Now()
						// Observed inside the root span so exemplar capture
						// links the latency bucket to this trace.
						lat.ObserveAt(wp, done-op.arrival)
						root.End(wp)
						latencies[op.idx] = done - op.arrival
						if done > lastDone {
							lastDone = done
						}
					}
					side.Close(wp)
				})
			}
		}
		p.WaitWG(workersDone)
		mm.TCPProxy.Stop(p)
		p.WaitWG(serversDone)

		res.serveResult = summarize(latencies, firstArrival, lastDone)
	})
	res.vt = m.Engine.Now()

	if az := m.Analyzer(); az != nil {
		_, kept, _, _ := az.Stats()
		res.traces = kept
		res.report = az.Blame()
		var b bytes.Buffer
		if err := res.report.Write(&b); err != nil {
			panic(err)
		}
		b.WriteByte('\n')
		if err := az.WriteRollups(&b); err != nil {
			panic(err)
		}
		res.blameText = b.String()
		if hs := az.Hotspot(); hs != nil {
			res.hotShard = hs.Shard
			res.hotTenant = hs.Tenant
		}
		wantShard := strconv.Itoa(analyzeHotShard)
		top := res.report.Entries
		if len(top) > 2 {
			top = top[:2]
		}
		for _, e := range top {
			if (e.Kind == "tenant" && e.Name == "analytics") ||
				(e.Kind == "shard" && e.Name == wantShard) {
				res.topHits++
			}
		}
	}
	return res
}

// AnalyzeSummary is what the `solros-bench analyze` subcommand prints:
// the rendered blame report plus rollups, the hotspot verdict, the
// indexed trace count, and how many of the top-2 blame entries name the
// planted culprits.
type AnalyzeSummary struct {
	Text      string // deterministic blame report + per-tenant/per-shard rollups
	HotShard  string // hot shard named by the detector ("" = none)
	HotTenant string
	Traces    int // records in the trace index
	TopHits   int // of the top-2 blame entries, how many name the plant
}

// AnalyzeReport runs the planted-anomaly scenario with the analyzer on
// and returns the subcommand's whole surface.
func AnalyzeReport() AnalyzeSummary {
	load, n := analyzeLoad()
	r := analyzeRun(true, load, n)
	return AnalyzeSummary{
		Text:      r.blameText,
		HotShard:  r.hotShard,
		HotTenant: r.hotTenant,
		Traces:    r.traces,
		TopHits:   r.topHits,
	}
}

// AnalyzeSchema versions the BENCH_analyze.json format.
const AnalyzeSchema = "solros-bench-analyze/v1"

// AnalyzeBenchmarks runs the gated analyze points. The overhead point is
// the passivity gate: committed at 0, so any virtual-time cost the
// analyzer ever grows registers as a regression. The top-hits point
// encodes the acceptance criterion — both planted culprits named in the
// top two blame entries.
func AnalyzeBenchmarks() CoreBench {
	load, n := analyzeLoad()
	base := analyzeRun(false, load, n)
	full := analyzeRun(true, load, n)
	return CoreBench{
		Schema: AnalyzeSchema,
		Points: []CorePoint{
			{Name: "analyze_overhead_pct", Value: analyzeOverheadPct(base, full), Unit: "%", HigherIsBetter: false},
			{Name: "analyze_tput", Value: full.achievedKops, Unit: "Kops/s", HigherIsBetter: true},
			{Name: "analyze_p99", Value: us(full.p99), Unit: "us", HigherIsBetter: false},
			{Name: "analyze_traces", Value: float64(full.traces), Unit: "records", HigherIsBetter: true},
			{Name: "analyze_blame_top_hits", Value: float64(full.topHits), Unit: "of 2", HigherIsBetter: true},
		},
	}
}
