package bench

import (
	"runtime"
	"sync"
	"time"

	"solros/internal/core"
	"solros/internal/ninep"
	"solros/internal/sim"
)

// Zero-alloc hot-path experiment (ISSUE 7): heap traffic on the delegated
// read path with the pooling machinery off vs on. The knob is heap-only,
// so virtual-time throughput must be identical in both columns — what
// moves is allocs and bytes allocated per delegated read, measured with
// runtime.MemStats around a steady-state (cache-resident) read loop while
// every proc of the machine runs interleaved inside the window.

var hotSizes = []int64{4 << 10, 64 << 10, 1 << 20, 4 << 20}

// hotFileBytes fits the default shared cache, so after one cold pass every
// read is a pure RPC + cache-hit push: exactly the path the pools target.
const hotFileBytes = 4 << 20

// HotPath measures the sweep for EXPERIMENTS.md: throughput (must match
// off/on), allocations per read, and bytes allocated per read.
func HotPath() []Row {
	type cell struct{ tput, allocs, bytes float64 }
	cells := map[bool]map[int64]cell{false: {}, true: {}}
	for _, hot := range []bool{false, true} {
		for _, bs := range hotSizes {
			t, a, by := hotPoint(hot, bs)
			cells[hot][bs] = cell{t, a, by}
		}
	}
	var rows []Row
	for _, s := range []struct {
		name string
		hot  bool
		get  func(cell) float64
		unit string
	}{
		{"tput/pool-off", false, func(c cell) float64 { return c.tput }, "GB/s"},
		{"tput/pool-on", true, func(c cell) float64 { return c.tput }, "GB/s"},
		{"allocs/pool-off", false, func(c cell) float64 { return c.allocs }, "allocs/read"},
		{"allocs/pool-on", true, func(c cell) float64 { return c.allocs }, "allocs/read"},
		{"bytes/pool-off", false, func(c cell) float64 { return c.bytes }, "B/read"},
		{"bytes/pool-on", true, func(c cell) float64 { return c.bytes }, "B/read"},
	} {
		for _, bs := range hotSizes {
			rows = append(rows, row("hotpath", s.name, sizeLabel(bs), s.get(cells[s.hot][bs]), s.unit))
		}
	}
	return rows
}

// hotPoint runs one sweep cell: steady-state bs-sized delegated reads of a
// cache-resident file, reporting virtual-time throughput and per-read heap
// traffic.
func hotPoint(hot bool, bs int64) (tput, allocsOp, bytesOp float64) {
	m := core.NewMachine(core.Config{
		DiskBytes:    16 << 20,
		PhiMemBytes:  bs + (64 << 20),
		ProxyWorkers: 8,
		HotPath:      hot,
	})
	m.MustRun(func(p *sim.Proc, mm *core.Machine) {
		phi := mm.Phis[0]
		fd, err := phi.FS.Open(p, "/hot", ninep.OCreate|ninep.OBuffer)
		if err != nil {
			panic(err)
		}
		f, err := mm.FS.Open(p, "/hot")
		if err != nil {
			panic(err)
		}
		if err := f.Truncate(p, hotFileBytes); err != nil {
			panic(err)
		}
		buf := phi.FS.AllocBuffer(bs)
		readAll := func() {
			for off := int64(0); off+bs <= hotFileBytes; off += bs {
				if _, err := phi.FS.Read(p, fd, off, buf, bs); err != nil {
					panic(err)
				}
			}
		}
		// One cold pass fills the cache, a few more warm every pool and
		// lazily-grown map before the measured window opens.
		for i := 0; i < 5; i++ {
			readAll()
		}
		const passes = 16
		reads := passes * (hotFileBytes / bs)
		var before, after runtime.MemStats
		start := p.Now()
		runtime.ReadMemStats(&before)
		for i := 0; i < passes; i++ {
			readAll()
		}
		runtime.ReadMemStats(&after)
		secs := (p.Now() - start).Seconds()
		allocsOp = float64(after.Mallocs-before.Mallocs) / float64(reads)
		bytesOp = float64(after.TotalAlloc-before.TotalAlloc) / float64(reads)
		tput = gbs(passes*hotFileBytes, secs)
	})
	return tput, allocsOp, bytesOp
}

// hotPipe measures the pipelined-read benchmark's heap traffic: warm
// (cache-resident) 2 MB delegated reads split into windowed chunk RPCs
// with batched ring drains — the configuration BenchmarkPipelinedRead
// exercises, steady-state so the per-RPC churn dominates.
func hotPipe(hot bool) (tput, allocsOp, bytesOp float64) {
	const bs = 2 << 20
	m := core.NewMachine(core.Config{
		DiskBytes:    pipeDiskBytes,
		CacheBytes:   pipeFileBytes + (8 << 20), // whole file stays resident
		PhiMemBytes:  bs + (64 << 20),
		ProxyWorkers: 8,
		Pipeline:     true,
		BatchRecv:    true,
		Overlap:      true,
		HotPath:      hot,
	})
	m.MustRun(func(p *sim.Proc, mm *core.Machine) {
		phi := mm.Phis[0]
		fd, err := phi.FS.Open(p, "/pipe", ninep.OCreate|ninep.OBuffer)
		if err != nil {
			panic(err)
		}
		f, err := mm.FS.Open(p, "/pipe")
		if err != nil {
			panic(err)
		}
		if err := f.Truncate(p, pipeFileBytes); err != nil {
			panic(err)
		}
		buf := phi.FS.AllocBuffer(bs)
		readAll := func() {
			for off := int64(0); off+bs <= pipeFileBytes; off += bs {
				if _, err := phi.FS.Read(p, fd, off, buf, bs); err != nil {
					panic(err)
				}
			}
		}
		for i := 0; i < 3; i++ {
			readAll()
		}
		const passes = 8
		reads := passes * (pipeFileBytes / bs)
		var before, after runtime.MemStats
		start := p.Now()
		runtime.ReadMemStats(&before)
		for i := 0; i < passes; i++ {
			readAll()
		}
		runtime.ReadMemStats(&after)
		secs := (p.Now() - start).Seconds()
		allocsOp = float64(after.Mallocs-before.Mallocs) / float64(reads)
		bytesOp = float64(after.TotalAlloc-before.TotalAlloc) / float64(reads)
		tput = gbs(passes*pipeFileBytes, secs)
	})
	return tput, allocsOp, bytesOp
}

// WallPipelinedRead is the wall-clock parallel backend (ROADMAP item 2):
// `workers` independent machines each run the cold pipelined-read workload
// on a real goroutine, and the result is aggregate wall-clock throughput —
// how fast this host actually simulates the workload on real cores. Every
// machine's virtual-time result is untouched (each sim is still
// deterministic and single-threaded internally); only the harness goes
// parallel. Non-deterministic by construction, so it is recorded as its
// own BENCH series and never gated by benchdiff.
func WallPipelinedRead(hot bool, workers int) float64 {
	const bs = 2 << 20
	if workers < 1 {
		workers = 1
	}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := core.NewMachine(core.Config{
				DiskBytes:    pipeDiskBytes,
				PhiMemBytes:  bs + (64 << 20),
				ProxyWorkers: 8,
				Pipeline:     true,
				BatchRecv:    true,
				Overlap:      true,
				HotPath:      hot,
			})
			m.MustRun(func(p *sim.Proc, mm *core.Machine) {
				phi := mm.Phis[0]
				fd, err := phi.FS.Open(p, "/pipe", ninep.OCreate|ninep.OBuffer)
				if err != nil {
					panic(err)
				}
				f, err := mm.FS.Open(p, "/pipe")
				if err != nil {
					panic(err)
				}
				if err := f.Truncate(p, pipeFileBytes); err != nil {
					panic(err)
				}
				buf := phi.FS.AllocBuffer(bs)
				for off := int64(0); off+bs <= pipeFileBytes; off += bs {
					if _, err := phi.FS.Read(p, fd, off, buf, bs); err != nil {
						panic(err)
					}
				}
			})
		}()
	}
	wg.Wait()
	return gbs(int64(workers)*pipeFileBytes, time.Since(start).Seconds())
}

// HotpathSchema versions the BENCH_hotpath.json format.
const HotpathSchema = "solros-bench-hotpath/v1"

// HotpathBenchmarks runs the hot-path benchmark points for
// BENCH_hotpath.json: pipelined-read throughput and heap traffic with the
// pools off and on, the headline allocs/op reduction, and (when parallel
// > 0) the wall-clock parallel series.
func HotpathBenchmarks(parallel int) CoreBench {
	offT, offA, offB := hotPipe(false)
	onT, onA, onB := hotPipe(true)
	reduction := 0.0
	if offA > 0 {
		reduction = (offA - onA) / offA * 100
	}
	points := []CorePoint{
		{Name: "pipelined_read_2mb_gbs_pool_off", Value: offT, Unit: "GB/s", HigherIsBetter: true},
		{Name: "pipelined_read_2mb_gbs_pool_on", Value: onT, Unit: "GB/s", HigherIsBetter: true},
		{Name: "pipelined_read_2mb_allocs_pool_off", Value: offA, Unit: "allocs/read", HigherIsBetter: false},
		{Name: "pipelined_read_2mb_allocs_pool_on", Value: onA, Unit: "allocs/read", HigherIsBetter: false},
		{Name: "pipelined_read_2mb_bytes_pool_off", Value: offB, Unit: "B/read", HigherIsBetter: false},
		{Name: "pipelined_read_2mb_bytes_pool_on", Value: onB, Unit: "B/read", HigherIsBetter: false},
		{Name: "pipelined_read_allocs_reduction", Value: reduction, Unit: "%", HigherIsBetter: true},
	}
	if parallel > 0 {
		points = append(points,
			CorePoint{Name: "wall_pipelined_read_2mb_pool_off", Value: WallPipelinedRead(false, parallel), Unit: "GB/s-wall", HigherIsBetter: true},
			CorePoint{Name: "wall_pipelined_read_2mb_pool_on", Value: WallPipelinedRead(true, parallel), Unit: "GB/s-wall", HigherIsBetter: true},
		)
	}
	return CoreBench{Schema: HotpathSchema, Points: points}
}
