package bench

import (
	"fmt"

	"solros/internal/controlplane"
	"solros/internal/core"
	"solros/internal/cpu"
	"solros/internal/model"
	"solros/internal/netstack"
	"solros/internal/pcie"
	"solros/internal/sim"
	"solros/internal/stats"
	"solros/internal/telemetry"
)

// netSystem identifies a server deployment for the network experiments.
type netSystem string

const (
	netHost     netSystem = "host"
	netSolros   netSystem = "phi-solros"
	netPhiLinux netSystem = "phi-linux"
)

// tcpLatencies runs `clients` concurrent 64-byte ping-pong connections for
// `rounds` each against the given server deployment and returns the RTT
// distribution. Concurrency is what spreads the distribution: the stock
// Phi's serialized stack queues under load, fattening its tail (Figure 1b).
// Samples accumulate in a telemetry distribution rather than a hand-rolled
// slice, so the figure reads percentiles from the same registry the rest of
// the instrumentation feeds.
func tcpLatencies(system netSystem, clients, rounds int) *stats.Sample {
	const port = 7100
	rtt := telemetry.New(telemetry.Options{}).Dist("bench.tcp_rtt")

	switch system {
	case netSolros:
		m := core.NewMachine(core.Config{Phis: 1})
		m.EnableNetwork()
		m.MustRun(func(p *sim.Proc, mm *core.Machine) {
			phi := mm.Phis[0]
			if err := phi.Net.Listen(p, port); err != nil {
				panic(err)
			}
			done := sim.NewWaitGroup("pingpong")
			done.Add(2 * clients)
			for c := 0; c < clients; c++ {
				p.Spawn("phi-server", func(sp *sim.Proc) {
					defer sp.DoneWG(done)
					sock, err := phi.Net.Accept(sp, port)
					if err != nil {
						return
					}
					for r := 0; r < rounds; r++ {
						msg, err := sock.RecvFull(sp, 64)
						if err != nil || len(msg) != 64 {
							return
						}
						sock.Send(sp, msg)
					}
				})
			}
			for c := 0; c < clients; c++ {
				p.Spawn("client", func(cp *sim.Proc) {
					defer cp.DoneWG(done)
					cp.Advance(100 * sim.Microsecond)
					conn, err := m.ClientStack.Dial(cp, m.HostStack, port)
					if err != nil {
						panic(err)
					}
					side := conn.Side(m.ClientStack)
					msg := make([]byte, 64)
					for r := 0; r < rounds; r++ {
						start := cp.Now()
						side.Send(cp, msg)
						side.RecvFull(cp, 64)
						rtt.Observe(cp.Now() - start)
					}
					side.Close(cp)
				})
			}
			p.WaitWG(done)
		})
		return rtt.Sample()

	case netHost, netPhiLinux:
		fab := pcie.New(128 << 20)
		var bridge *pcie.Device
		kind := cpu.Host
		serialized := false
		if system == netPhiLinux {
			bridge = fab.AddPhi("phi0", 0, 1<<20)
			kind = cpu.Phi
			serialized = true
		}
		net := netstack.NewNetwork(fab)
		client := net.NewStack("client", cpu.Host, nil)
		server := net.NewStack("server", kind, bridge)
		server.Serialized = serialized
		e := sim.NewEngine()
		l, err := server.Listen(port)
		if err != nil {
			panic(err)
		}
		wg := sim.NewWaitGroup("pp")
		wg.Add(2 * clients)
		for c := 0; c < clients; c++ {
			e.Spawn("server", 0, func(sp *sim.Proc) {
				defer sp.DoneWG(wg)
				conn, ok := l.Accept(sp)
				if !ok {
					return
				}
				side := conn.Side(server)
				for r := 0; r < rounds; r++ {
					msg, err := side.RecvFull(sp, 64)
					if err != nil || len(msg) != 64 {
						return
					}
					side.Send(sp, msg)
				}
			})
			e.Spawn("client", 0, func(cp *sim.Proc) {
				defer cp.DoneWG(wg)
				cp.Advance(20 * sim.Microsecond)
				conn, err := client.Dial(cp, server, port)
				if err != nil {
					panic(err)
				}
				side := conn.Side(client)
				msg := make([]byte, 64)
				for r := 0; r < rounds; r++ {
					start := cp.Now()
					side.Send(cp, msg)
					side.RecvFull(cp, 64)
					rtt.Observe(cp.Now() - start)
				}
				side.Close(cp)
			})
		}
		e.Spawn("join", 0, func(p *sim.Proc) { p.WaitWG(wg) })
		e.MustRun()
		return rtt.Sample()
	}
	panic("unknown system " + string(system))
}

var latencyPercentiles = []float64{10, 25, 50, 75, 90, 95, 99}

// Fig1b is the headline network figure: the 64 B message latency
// distribution for host, Phi-Solros, and stock Phi endpoints.
func Fig1b() []Row {
	var rows []Row
	for _, sys := range []netSystem{netHost, netSolros, netPhiLinux} {
		s := tcpLatencies(sys, 16, 40)
		for _, pct := range latencyPercentiles {
			rows = append(rows, row("fig1b", string(sys), fmt.Sprintf("p%.0f", pct),
				s.Percentile(pct).Seconds()*1e6, "us"))
		}
	}
	return rows
}

// Fig15 reports the same experiment as tail-latency summary rows
// (reconstructed from §6.1.3's latency discussion).
func Fig15() []Row {
	var rows []Row
	for _, sys := range []netSystem{netHost, netSolros, netPhiLinux} {
		s := tcpLatencies(sys, 16, 40)
		for _, pct := range []float64{50, 90, 99} {
			rows = append(rows, row("fig15", string(sys), fmt.Sprintf("p%.0f", pct),
				s.Percentile(pct).Seconds()*1e6, "us"))
		}
	}
	return rows
}

// fig13Net decomposes the 64 B round trip into protocol-stack time and
// proxy/transport time for Solros vs the stock Phi (Figure 13b).
func fig13Net() []Row {
	meanRTT := func(sys netSystem) sim.Time {
		return tcpLatencies(sys, 1, 50).Mean()
	}
	sol := meanRTT(netSolros)
	phi := meanRTT(netPhiLinux)

	// Per round trip the server-side stack touches 2 segments; the
	// client contributes identically in both deployments, so we report
	// the server-side split.
	hostStack := 2 * model.TCPSegmentCost
	phiStack := 2 * model.TCPSegmentCost * sim.Time(cpu.Phi.SystemsSlowdown())
	us := func(t sim.Time) float64 { return t.Seconds() * 1e6 }
	wire := 2 * model.WireLatency
	solProxy := sol - hostStack - wire
	phiRest := phi - phiStack - wire
	if solProxy < 0 {
		solProxy = 0
	}
	if phiRest < 0 {
		phiRest = 0
	}
	return []Row{
		row("fig13b", "phi-linux", "network-stack", us(phiStack), "us"),
		row("fig13b", "phi-linux", "bridge/wire", us(phi-phiStack), "us"),
		row("fig13b", "phi-linux", "total-rtt", us(phi), "us"),
		row("fig13b", "phi-solros", "network-stack(host)", us(hostStack), "us"),
		row("fig13b", "phi-solros", "proxy/transport", us(solProxy), "us"),
		row("fig13b", "phi-solros", "total-rtt", us(sol), "us"),
	}
}

// Fig14 sweeps message size for a request-sink throughput test: the
// client streams messages of the given size; the server consumes them
// (reconstructed network-throughput figure).
func Fig14() []Row {
	sizes := []int{64, 512, 4 << 10, 16 << 10, 64 << 10}
	const perPoint = 4 << 20
	var rows []Row
	for _, sys := range []netSystem{netHost, netSolros, netPhiLinux} {
		for _, size := range sizes {
			count := perPoint / size
			if count < 16 {
				count = 16
			}
			g := tcpSinkThroughput(sys, size, count)
			rows = append(rows, row("fig14", string(sys), sizeLabel(int64(size)), g, "Gb/s"))
		}
	}
	return rows
}

// tcpSinkThroughput measures client->server goodput in Gb/s.
func tcpSinkThroughput(system netSystem, msgSize, count int) float64 {
	const port = 7200
	total := int64(msgSize) * int64(count)
	var elapsed sim.Time

	switch system {
	case netSolros:
		m := core.NewMachine(core.Config{Phis: 1})
		m.EnableNetwork()
		m.MustRun(func(p *sim.Proc, mm *core.Machine) {
			phi := mm.Phis[0]
			phi.Net.Listen(p, port)
			done := sim.NewWaitGroup("sink")
			done.Add(2)
			p.Spawn("phi-sink", func(sp *sim.Proc) {
				defer sp.DoneWG(done)
				sock, err := phi.Net.Accept(sp, port)
				if err != nil {
					return
				}
				start := sp.Now()
				got, _ := sock.RecvFull(sp, int(total))
				if int64(len(got)) == total {
					elapsed = sp.Now() - start
				}
			})
			p.Spawn("client", func(cp *sim.Proc) {
				defer cp.DoneWG(done)
				cp.Advance(50 * sim.Microsecond)
				conn, err := m.ClientStack.Dial(cp, m.HostStack, port)
				if err != nil {
					panic(err)
				}
				side := conn.Side(m.ClientStack)
				msg := make([]byte, msgSize)
				for i := 0; i < count; i++ {
					side.Send(cp, msg)
				}
				side.Close(cp)
			})
			p.WaitWG(done)
		})

	case netHost, netPhiLinux:
		fab := pcie.New(128 << 20)
		var bridge *pcie.Device
		kind := cpu.Host
		if system == netPhiLinux {
			bridge = fab.AddPhi("phi0", 0, 1<<20)
			kind = cpu.Phi
		}
		net := netstack.NewNetwork(fab)
		client := net.NewStack("client", cpu.Host, nil)
		server := net.NewStack("server", kind, bridge)
		server.Serialized = system == netPhiLinux
		e := sim.NewEngine()
		l, _ := server.Listen(port)
		e.Spawn("server", 0, func(sp *sim.Proc) {
			conn, ok := l.Accept(sp)
			if !ok {
				return
			}
			start := sp.Now()
			got, _ := conn.Side(server).RecvFull(sp, int(total))
			if int64(len(got)) == total {
				elapsed = sp.Now() - start
			}
		})
		e.Spawn("client", 0, func(cp *sim.Proc) {
			cp.Advance(20 * sim.Microsecond)
			conn, err := client.Dial(cp, server, port)
			if err != nil {
				panic(err)
			}
			side := conn.Side(client)
			msg := make([]byte, msgSize)
			for i := 0; i < count; i++ {
				side.Send(cp, msg)
			}
			side.Close(cp)
		})
		e.MustRun()
	}
	if elapsed <= 0 {
		return 0
	}
	return float64(total) * 8 / elapsed.Seconds() / 1e9
}

// Fig16 scales the shared listening socket across co-processor counts:
// aggregate request throughput for a 64 B request / 1 KB response service
// with per-request co-processor compute (reconstructed from §4.4.3's
// design and §6's scalability discussion). Both of the paper's forwarding
// rules run: connection-based round robin and content-based hashing.
func Fig16() []Row {
	var rows []Row
	rows = append(rows, fig16Series("round-robin", nil)...)
	rows = append(rows, fig16Series("content-hash", func() controlplane.Balancer {
		return &controlplane.ContentBalancer{Key: controlplane.FNV1a}
	})...)
	return rows
}

func fig16Series(name string, mkBalancer func() controlplane.Balancer) []Row {
	const (
		port        = 7300
		connPerPhi  = 8
		reqsPerConn = 40
		respBytes   = 1024
	)
	var rows []Row
	for _, phis := range []int{1, 2, 4} {
		m := core.NewMachine(core.Config{Phis: phis})
		m.EnableNetwork()
		conns := connPerPhi * phis
		var elapsed sim.Time
		var served int64
		m.MustRun(func(p *sim.Proc, mm *core.Machine) {
			if mkBalancer != nil {
				mm.TCPProxy.Balance = mkBalancer()
			}
			for _, phi := range mm.Phis {
				if err := phi.Net.Listen(p, port); err != nil {
					panic(err)
				}
			}
			// With content-based sharding per-phi connection counts are
			// hash-dependent, so servers loop until the proxy is
			// stopped rather than expecting a fixed share.
			done := sim.NewWaitGroup("kv-clients")
			done.Add(conns)
			serversDone := sim.NewWaitGroup("kv-servers")
			for _, phi := range mm.Phis {
				phi := phi
				for c := 0; c < connPerPhi; c++ {
					c := c
					serversDone.Add(1)
					p.Spawn("kv-server", func(sp *sim.Proc) {
						defer sp.DoneWG(serversDone)
						resp := make([]byte, respBytes)
						core := phi.Pool.Core(c)
						for {
							sock, err := phi.Net.Accept(sp, port)
							if err != nil {
								return
							}
							for {
								req, err := sock.RecvFull(sp, 64)
								if err != nil || len(req) != 64 {
									break
								}
								// Per-request service compute on
								// the co-processor (hash + lookup).
								core.Compute(sp, 10*sim.Microsecond)
								sock.Send(sp, resp)
								served++
							}
						}
					})
				}
			}
			start := p.Now()
			for c := 0; c < conns; c++ {
				c := c
				p.Spawn("kv-client", func(cp *sim.Proc) {
					defer cp.DoneWG(done)
					cp.Advance(100 * sim.Microsecond)
					conn, err := m.ClientStack.Dial(cp, m.HostStack, port)
					if err != nil {
						panic(err)
					}
					side := conn.Side(m.ClientStack)
					req := make([]byte, 64)
					req[0], req[1] = byte(c), byte(c>>8) // shard key
					for r := 0; r < reqsPerConn; r++ {
						side.Send(cp, req)
						if _, err := side.RecvFull(cp, respBytes); err != nil {
							return
						}
					}
					side.Close(cp)
				})
			}
			p.WaitWG(done)
			elapsed = p.Now() - start
			mm.TCPProxy.Stop(p)
			p.WaitWG(serversDone)
		})
		total := float64(conns * reqsPerConn)
		rows = append(rows, row("fig16", name, fmt.Sprintf("%d", phis),
			total/elapsed.Seconds()/1000, "Kreq/s"))
	}
	return rows
}
