package bench

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// These tests lock in the *shapes* the reproduction must preserve: who
// wins, by roughly what factor, where crossovers fall. They run the
// cheaper experiments end to end.

func valueOf(t *testing.T, rows []Row, series, x string) float64 {
	t.Helper()
	for _, r := range rows {
		if r.Series == series && r.X == x {
			return r.Value
		}
	}
	t.Fatalf("no row for series=%q x=%q", series, x)
	return 0
}

func TestLookupAndIDs(t *testing.T) {
	for _, id := range IDs() {
		if _, desc, ok := Lookup(id); !ok || desc == "" {
			t.Fatalf("experiment %q not resolvable", id)
		}
	}
	if _, _, ok := Lookup("nope"); ok {
		t.Fatal("bogus id resolved")
	}
}

func TestFormatGroupsBySeries(t *testing.T) {
	rows := []Row{
		row("f", "a", "1", 1, "u"),
		row("f", "a", "2", 2, "u"),
		row("f", "b", "1", 3, "u"),
	}
	out := Format(rows)
	if strings.Count(out, "# f — a") != 1 || strings.Count(out, "# f — b") != 1 {
		t.Fatalf("bad grouping:\n%s", out)
	}
}

func TestFig4Shape(t *testing.T) {
	rows := Fig4()
	// DMA beats memcpy at 8MB; memcpy beats DMA at 64B; host-initiated
	// beats phi-initiated.
	if valueOf(t, rows, "phi->host/dma-host-init", "8MB") <= valueOf(t, rows, "phi->host/memcpy-host", "8MB") {
		t.Error("8MB: DMA should beat memcpy")
	}
	if valueOf(t, rows, "phi->host/memcpy-host", "64B") <= valueOf(t, rows, "phi->host/dma-host-init", "64B") {
		t.Error("64B: memcpy should beat DMA")
	}
	if valueOf(t, rows, "phi->host/dma-host-init", "8MB") <= valueOf(t, rows, "phi->host/dma-phi-init", "8MB") {
		t.Error("host-initiated DMA should beat phi-initiated")
	}
}

func TestFig1bShape(t *testing.T) {
	rows := Fig1b()
	host := valueOf(t, rows, "host", "p99")
	sol := valueOf(t, rows, "phi-solros", "p99")
	phi := valueOf(t, rows, "phi-linux", "p99")
	if !(host < sol && sol < phi) {
		t.Fatalf("p99 ordering wrong: host=%.1f solros=%.1f phi=%.1f", host, sol, phi)
	}
	if phi < 4*sol {
		t.Fatalf("phi-linux p99 (%.1f us) should be >=4x solros (%.1f us); paper ~7x", phi, sol)
	}
}

func TestFig13Shape(t *testing.T) {
	rows := Fig13()
	vTotal := valueOf(t, rows, "phi-virtio", "total")
	sTotal := valueOf(t, rows, "phi-solros", "total")
	if vTotal < 5*sTotal {
		t.Fatalf("512KB read: virtio (%.3f ms) should be >=5x solros (%.3f ms); paper ~14x", vTotal, sTotal)
	}
	vCopy := valueOf(t, rows, "phi-virtio", "block/transport")
	sCopy := valueOf(t, rows, "phi-solros", "proxy/transport")
	if vCopy < 20*sCopy {
		t.Fatalf("virtio CPU copy (%.3f ms) should dwarf solros transport (%.3f ms); paper 171x", vCopy, sCopy)
	}
	// Stub vs full FS (Figure 13a's 5x claim, our model: 30us vs 8us).
	vFS := valueOf(t, rows, "phi-virtio", "file-system")
	sFS := valueOf(t, rows, "phi-solros", "fs-stub")
	if vFS < 3*sFS {
		t.Fatalf("full FS on Phi (%.3f) should be >=3x the stub (%.3f); paper 5x", vFS, sFS)
	}
}

func TestFig16LinearScaling(t *testing.T) {
	rows := Fig16()
	one := valueOf(t, rows, "round-robin", "1")
	four := valueOf(t, rows, "round-robin", "4")
	if four < 3*one {
		t.Fatalf("4 phis (%.0f) should be >=3x 1 phi (%.0f)", four, one)
	}
}

func TestFig18SolrosWins(t *testing.T) {
	rows := Fig18()
	sol := valueOf(t, rows, "phi-solros", "search")
	phi := valueOf(t, rows, "phi-linux", "search")
	ratio := sol / phi
	if ratio < 1.4 || ratio > 4 {
		t.Fatalf("image search solros/phi-linux = %.2f, want ~2 (paper: 2x)", ratio)
	}
}

func TestAblationDirections(t *testing.T) {
	rows := Ablations()
	if valueOf(t, rows, "nvme-coalescing", "on") <= valueOf(t, rows, "nvme-coalescing", "off") {
		t.Error("coalescing on should beat off")
	}
	if valueOf(t, rows, "nvme-coalescing", "off-irq/op") <= valueOf(t, rows, "nvme-coalescing", "on-irq/op") {
		t.Error("coalescing should reduce interrupts per op")
	}
	if valueOf(t, rows, "ring-master", "at-phi(sender)") <= valueOf(t, rows, "ring-master", "at-host") {
		t.Error("master at the co-processor should win for RPC streams")
	}
	if valueOf(t, rows, "combine-batch", "64") <= valueOf(t, rows, "combine-batch", "1") {
		t.Error("larger combining batches should win")
	}
	if valueOf(t, rows, "shared-cache", "on") <= valueOf(t, rows, "shared-cache", "off") {
		t.Error("shared cache should speed up the second co-processor's reread")
	}
}

func TestPipelineShape(t *testing.T) {
	rows := Pipeline()
	// ISSUE 2 acceptance: >=1.5x virtual-time throughput for >=512KB
	// delegated buffered reads with pipelining on vs off, at every size.
	for _, x := range []string{"512KB", "1MB", "2MB", "4MB"} {
		sync := valueOf(t, rows, "sync", x)
		pipe := valueOf(t, rows, "pipelined", x)
		if pipe < 1.5*sync {
			t.Errorf("%s: pipelined (%.3f GB/s) should be >=1.5x sync (%.3f GB/s)", x, pipe, sync)
		}
		// Each mechanism alone should not regress the serial path.
		for _, s := range []string{"+window", "+batch", "+overlap"} {
			if v := valueOf(t, rows, s, x); v < 0.95*sync {
				t.Errorf("%s at %s (%.3f GB/s) regresses sync (%.3f GB/s)", s, x, v, sync)
			}
		}
	}
	// The overlapped NVMe leg alone should already beat serial fills.
	if ov, sync := valueOf(t, rows, "+overlap", "2MB"), valueOf(t, rows, "sync", "2MB"); ov < 1.5*sync {
		t.Errorf("overlap alone (%.3f GB/s) should be >=1.5x sync (%.3f GB/s) at 2MB", ov, sync)
	}
}

func TestChaosShape(t *testing.T) {
	// The quick chaos run must show every fault class recovering: results
	// byte-identical to the fault-free run, at least one recovery event,
	// and a deterministic repeat.
	defer func(q bool) { Quick = q }(Quick)
	Quick = true
	rows := Chaos()
	for _, series := range []string{"nvme-errors", "nvme-slow", "link-degrade",
		"ring-faults", "channel-crash", "everything"} {
		if v := valueOf(t, rows, series, "identical"); v != 1 {
			t.Errorf("%s: result diverged from the fault-free run", series)
		}
		if v := valueOf(t, rows, series, "recovered"); v <= 0 {
			t.Errorf("%s: no recovery events — faults never fired", series)
		}
		if v := valueOf(t, rows, series, "deterministic"); v != 1 {
			t.Errorf("%s: same seed did not reproduce the run", series)
		}
	}
}

// TestTraceOverheadShape runs the tracing-overhead experiment, checks the
// directions (tracing costs something, but not the farm), and emits the
// machine-readable BENCH_trace.json the bench trajectory tracks.
func TestTraceOverheadShape(t *testing.T) {
	rows := TraceOverhead()
	type sizeRec struct {
		Size        string  `json:"size"`
		GBsOff      float64 `json:"gbs_tracing_off"`
		GBsOn       float64 `json:"gbs_tracing_on"`
		OverheadPct float64 `json:"overhead_pct"`
	}
	var recs []sizeRec
	for _, bs := range traceSizes {
		x := sizeLabel(bs)
		off := valueOf(t, rows, "tracing-off", x)
		on := valueOf(t, rows, "tracing-on", x)
		ovh := valueOf(t, rows, "overhead", x)
		if off <= 0 || on <= 0 {
			t.Fatalf("%s: non-positive throughput off=%.3f on=%.3f", x, off, on)
		}
		// The 16-byte trailer rides multi-KB frames; overhead must stay
		// single-digit percent or tracing is not viable to ever turn on.
		if ovh > 10 {
			t.Errorf("%s: tracing overhead %.1f%% exceeds 10%%", x, ovh)
		}
		if ovh < -10 {
			t.Errorf("%s: tracing reports implausible speedup %.1f%%", x, ovh)
		}
		recs = append(recs, sizeRec{Size: x, GBsOff: off, GBsOn: on, OverheadPct: ovh})
	}
	blob, err := json.MarshalIndent(struct {
		Experiment string    `json:"experiment"`
		Workload   string    `json:"workload"`
		Points     []sizeRec `json:"points"`
	}{Experiment: "traceov", Workload: "pipelined cold buffered read", Points: recs}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_trace.json", append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestHotPathShape locks the ISSUE 7 acceptance directions: pooling must
// not move virtual time at any size (heap-only), and must cut per-read
// allocations by a wide margin on the cache-resident sweep.
func TestHotPathShape(t *testing.T) {
	rows := HotPath()
	for _, bs := range hotSizes {
		x := sizeLabel(bs)
		off := valueOf(t, rows, "tput/pool-off", x)
		on := valueOf(t, rows, "tput/pool-on", x)
		if off != on {
			t.Errorf("%s: pooling moved virtual-time throughput: off=%.6f on=%.6f GB/s", x, off, on)
		}
		aOff := valueOf(t, rows, "allocs/pool-off", x)
		aOn := valueOf(t, rows, "allocs/pool-on", x)
		if aOn > 2 {
			t.Errorf("%s: pool-on steady state allocates %.3f/read, budget is 2", x, aOn)
		}
		if aOff > 0 && aOn > 0.7*aOff {
			t.Errorf("%s: pooling reduced allocs only %.3f -> %.3f per read (<30%%)", x, aOff, aOn)
		}
	}
}

// BenchmarkHotPathSweep is the microbench form of the sweep: one
// sub-benchmark per (size, pooling) cell reporting the cell's virtual-time
// throughput and measured heap traffic per delegated read.
func BenchmarkHotPathSweep(b *testing.B) {
	for _, bs := range hotSizes {
		for _, hot := range []bool{false, true} {
			name := sizeLabel(bs) + "/pool-off"
			if hot {
				name = sizeLabel(bs) + "/pool-on"
			}
			b.Run(name, func(b *testing.B) {
				var tput, allocs, bytes float64
				for i := 0; i < b.N; i++ {
					tput, allocs, bytes = hotPoint(hot, bs)
				}
				b.ReportMetric(tput, "GB/s")
				b.ReportMetric(allocs, "allocs/read")
				b.ReportMetric(bytes, "B/read")
			})
		}
	}
}

func TestTable1CountsThisRepo(t *testing.T) {
	rows := Table1()
	total := valueOf(t, rows, "TOTAL", "impl")
	if total < 5000 {
		t.Fatalf("implementation LoC = %.0f, implausibly low (walker broken?)", total)
	}
	if valueOf(t, rows, "TOTAL", "test") <= 0 {
		t.Fatal("no test lines counted")
	}
}
