package bench

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden row tables from the current run")

// TestFigureGoldens pins the headline experiments bit-for-bit: with
// exploration off (no SchedSeed, no oracles — the default Config), every
// row of fig1a, fig11, and fig13 must match the committed goldens exactly.
// This is the guarantee that the schedule-exploration machinery is
// zero-cost when disarmed: seeded tie-break and oracle polling change
// nothing unless a config opts in.
//
// Regenerate after an intentional model change with:
//
//	go test ./internal/bench -run TestFigureGoldens -update-golden
func TestFigureGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure runs are not short")
	}
	for _, id := range []string{"fig1a", "fig11", "fig13"} {
		t.Run(id, func(t *testing.T) {
			run, _, ok := Lookup(id)
			if !ok {
				t.Fatalf("experiment %q not registered", id)
			}
			got := Format(run())
			path := filepath.Join("testdata", id+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", path, len(got))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update-golden to create): %v", err)
			}
			if got != string(want) {
				t.Fatalf("%s rows diverged from golden %s\n--- got ---\n%s\n--- want ---\n%s",
					id, path, got, want)
			}
		})
	}
}
