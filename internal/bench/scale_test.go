package bench

import (
	"path/filepath"
	"testing"
)

// scalePoints is a miniature BENCH_scale document for gate-logic tests.
func scalePoints() CoreBench {
	return CoreBench{
		Schema: ScaleSchema,
		Points: []CorePoint{
			{Name: "scale_fs_x16_sharded", Value: 7000, Unit: "Kops/s", HigherIsBetter: true},
			{Name: "scale_fs_speedup_x16", Value: 16, Unit: "x", HigherIsBetter: true},
			{Name: "scale_fs_knee_sharded", Value: 32, Unit: "phis", HigherIsBetter: true},
			{Name: "scale_fs_knee_margin", Value: 8, Unit: "x", HigherIsBetter: true},
		},
	}
}

// The scale document round-trips through the schema-agnostic loader the
// benchdiff CLI uses, and the schema-checked writer rejects readbacks
// under the wrong schema constant.
func TestScaleBenchRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_scale.json")
	if err := WriteCoreBench(path, scalePoints()); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBenchAny(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != ScaleSchema {
		t.Fatalf("schema = %q, want %q", got.Schema, ScaleSchema)
	}
	if len(got.Points) != 4 || got.Points[0] != scalePoints().Points[0] {
		t.Errorf("round-trip = %+v", got)
	}
	// The schema-specific core loader must refuse a scale document: the
	// cross-schema guard is what makes benchdiff exit 2 instead of
	// comparing apples to oranges.
	if _, err := LoadCoreBench(path); err == nil {
		t.Error("core loader accepted a scale-schema document")
	}
}

// A regressed knee hard-fails the gate: the saturation knee sliding left
// (sharded series bending earlier) and the knee margin shrinking are both
// HigherIsBetter points, so CompareCore flags them like any throughput
// loss. This is the regression CI's benchdiff step must catch if sharding
// quietly stops helping.
func TestScaleRegressedKneeFails(t *testing.T) {
	base := scalePoints()
	worse := scalePoints()
	worse.Points[2].Value = 8 // knee slid from 32 to 8 phis
	worse.Points[3].Value = 2 // margin collapsed from 8x to 2x
	ds := CompareCore(base, worse, 5)
	if countRegressed(ds) != 2 {
		t.Fatalf("regressed knee not flagged: %+v", ds)
	}
	// And within the budget nothing fires.
	fine := scalePoints()
	fine.Points[0].Value = 6800 // -2.9% throughput: inside 5%
	if ds := CompareCore(base, fine, 5); countRegressed(ds) != 0 {
		t.Errorf("in-budget movement flagged: %+v", ds)
	}
}

// The committed scale baseline loads, carries the scale schema, passes
// the gate against itself, and already encodes the issue's acceptance
// shape: >=3x sharded speedup at 16 co-processors and the sharded knee
// strictly beyond the unsharded knee (margin > 1).
func TestCommittedScaleBaseline(t *testing.T) {
	cb, err := LoadBenchAny("BENCH_scale.json")
	if err != nil {
		t.Fatal(err)
	}
	if cb.Schema != ScaleSchema {
		t.Fatalf("schema = %q, want %q", cb.Schema, ScaleSchema)
	}
	if len(cb.Points) != 7 {
		t.Fatalf("baseline has %d points, want 7", len(cb.Points))
	}
	byName := map[string]float64{}
	for _, p := range cb.Points {
		byName[p.Name] = p.Value
	}
	if v := byName["scale_fs_speedup_x16"]; v < 3 {
		t.Errorf("sharded fs speedup at 16 phis = %.2fx, want >= 3x", v)
	}
	if v := byName["scale_kv_speedup_x16"]; v < 3 {
		t.Errorf("sharded kv speedup at 16 phis = %.2fx, want >= 3x", v)
	}
	if v := byName["scale_fs_knee_margin"]; v <= 1 {
		t.Errorf("knee margin = %.2fx: sharded knee not beyond unsharded knee", v)
	}
	if ds := CompareCore(cb, cb, 5); countRegressed(ds) != 0 {
		t.Errorf("committed scale baseline regressed against itself: %+v", ds)
	}
}

// TestScaleShape runs the quick fig-scale sweep end to end and asserts
// the issue's acceptance shape on live numbers: aggregate sharded
// throughput at 16 co-processors >= 3x the single-phi point, the
// unsharded series saturating inside the sweep, and the sharded knee
// strictly beyond it.
func TestScaleShape(t *testing.T) {
	defer func(q bool) { Quick = q }(Quick)
	Quick = true
	rows := Scale()
	sh1 := valueOf(t, rows, "sharded fs tput", "1phi")
	sh16 := valueOf(t, rows, "sharded fs tput", "16phi")
	if sh16 < 3*sh1 {
		t.Errorf("sharded fs tput at 16 phis = %.1f Kops/s, want >= 3x single-phi %.1f", sh16, sh1)
	}
	un16 := valueOf(t, rows, "unsharded fs tput", "16phi")
	if sh16 < 2*un16 {
		t.Errorf("sharded fs tput %.1f not clearly above unsharded %.1f at 16 phis", sh16, un16)
	}
	kneeUn := valueOf(t, rows, "knee", "unsharded")
	kneeSh := valueOf(t, rows, "knee", "sharded")
	if kneeSh <= kneeUn {
		t.Errorf("sharded knee %.0f not beyond unsharded knee %.0f", kneeSh, kneeUn)
	}
	// KV churn: admission sharding must help too.
	kv1 := valueOf(t, rows, "sharded kv tput", "1phi")
	kv16 := valueOf(t, rows, "sharded kv tput", "16phi")
	if kv16 < 3*kv1 {
		t.Errorf("sharded kv churn at 16 phis = %.1f Kconn/s, want >= 3x single-phi %.1f", kv16, kv1)
	}
}
