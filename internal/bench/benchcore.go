package bench

import (
	"encoding/json"
	"fmt"
	"os"

	"solros/internal/faults"
)

// The core benchmark baseline: four scalar health numbers covering the
// main code paths — the serial buffered read, the fully pipelined read,
// throughput under NVMe fault injection, and causal-tracing overhead.
// All are deterministic functions of virtual time, so the committed
// BENCH_core.json compares exactly across machines; benchdiff flags any
// point that moved past a regression budget.

// CoreSchema versions the BENCH_core.json format.
const CoreSchema = "solros-bench-core/v1"

// CorePoint is one scalar of the baseline.
type CorePoint struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
	// HigherIsBetter orients the regression check: throughput regresses
	// downward, overhead regresses upward.
	HigherIsBetter bool `json:"higher_is_better"`
}

// CoreBench is the BENCH_core.json document.
type CoreBench struct {
	Schema string      `json:"schema"`
	Points []CorePoint `json:"points"`
}

// CoreBenchmarks runs the baseline points. Sizes follow the pipeline and
// chaos experiments; the chaos point uses the nvme-errors fault class at
// the package Seed so retries are exercised deterministically.
func CoreBenchmarks() CoreBench {
	const bs = 2 << 20
	sync := pipePoint(false, false, false, bs)
	pipe := pipePoint(true, true, true, bs)

	fileBytes, chunk := int64(8<<20), int64(256<<10)
	plan := faults.Plan{Seed: Seed, NVMeReadErrRate: 0.03, NVMeWriteErrRate: 0.03}
	r := chaosRun(&plan, fileBytes, chunk, "controlplane.fsproxy.io_retries")
	// The chaos workload writes then reads the file once each.
	chaos := gbs(2*fileBytes, (r.end - r.start).Seconds())

	offGBs := tracePoint(false, 512<<10)
	onGBs := tracePoint(true, 512<<10)
	overhead := 0.0
	if offGBs > 0 {
		overhead = (offGBs - onGBs) / offGBs * 100
	}

	// Heap-traffic gate for the zero-alloc hot path (ISSUE 7): allocs/op
	// and B/op of the steady-state pipelined read with HotPath armed.
	// Committed in BENCH_core.json so benchdiff fails loudly when pooling
	// regresses, not just when virtual time does.
	_, allocs, bytes := hotPipe(true)

	return CoreBench{
		Schema: CoreSchema,
		Points: []CorePoint{
			{Name: "sync_read_2mb", Value: sync, Unit: "GB/s", HigherIsBetter: true},
			{Name: "pipelined_read_2mb", Value: pipe, Unit: "GB/s", HigherIsBetter: true},
			{Name: "chaos_nvme_errors_rw", Value: chaos, Unit: "GB/s", HigherIsBetter: true},
			{Name: "trace_overhead_512kb", Value: overhead, Unit: "%", HigherIsBetter: false},
			{Name: "pipelined_read_allocs", Value: allocs, Unit: "allocs/read", HigherIsBetter: false},
			{Name: "pipelined_read_bytes", Value: bytes, Unit: "B/read", HigherIsBetter: false},
		},
	}
}

// WriteCoreBench writes the document as indented JSON.
func WriteCoreBench(path string, cb CoreBench) error {
	blob, err := json.MarshalIndent(cb, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// LoadCoreBench reads and validates a BENCH_core.json document.
func LoadCoreBench(path string) (CoreBench, error) {
	return LoadBench(path, CoreSchema)
}

// LoadBench reads a benchmark document and checks it carries the expected
// schema (CoreSchema for BENCH_core.json, HotpathSchema for
// BENCH_hotpath.json — both share the point format).
func LoadBench(path, schema string) (CoreBench, error) {
	var cb CoreBench
	blob, err := os.ReadFile(path)
	if err != nil {
		return cb, err
	}
	if err := json.Unmarshal(blob, &cb); err != nil {
		return cb, fmt.Errorf("%s: %w", path, err)
	}
	if cb.Schema != schema {
		return cb, fmt.Errorf("%s: schema %q, want %q", path, cb.Schema, schema)
	}
	return cb, nil
}

// LoadBenchAny reads a benchmark document accepting any schema; callers
// (benchdiff) must check that the documents they compare agree on it.
func LoadBenchAny(path string) (CoreBench, error) {
	var cb CoreBench
	blob, err := os.ReadFile(path)
	if err != nil {
		return cb, err
	}
	if err := json.Unmarshal(blob, &cb); err != nil {
		return cb, fmt.Errorf("%s: %w", path, err)
	}
	if cb.Schema == "" {
		return cb, fmt.Errorf("%s: missing schema", path)
	}
	return cb, nil
}

// CoreDelta is one point's old-vs-new comparison.
type CoreDelta struct {
	Name     string
	Unit     string
	Old, New float64
	// WorsePct is the regression magnitude in percent, oriented by
	// HigherIsBetter: positive means the new value is worse.
	WorsePct float64
	// Regressed is set when WorsePct exceeds the allowed budget.
	Regressed bool
	// Missing is set when the point exists in only one document.
	Missing bool
}

// CompareCore diffs two baselines: every point in old is matched by name
// in new and its movement oriented by HigherIsBetter; a point moving
// worse by more than maxRegressPct percent is flagged. Points present on
// only one side are reported as Missing (and count as regressions — a
// silently dropped benchmark is how baselines rot).
func CompareCore(old, new CoreBench, maxRegressPct float64) []CoreDelta {
	newByName := make(map[string]CorePoint, len(new.Points))
	for _, p := range new.Points {
		newByName[p.Name] = p
	}
	var out []CoreDelta
	seen := make(map[string]bool, len(old.Points))
	for _, op := range old.Points {
		seen[op.Name] = true
		np, ok := newByName[op.Name]
		if !ok {
			out = append(out, CoreDelta{Name: op.Name, Unit: op.Unit, Old: op.Value, Missing: true, Regressed: true})
			continue
		}
		d := CoreDelta{Name: op.Name, Unit: op.Unit, Old: op.Value, New: np.Value}
		switch {
		case op.Value != 0 && op.HigherIsBetter:
			d.WorsePct = (op.Value - np.Value) / op.Value * 100
		case op.Value != 0:
			d.WorsePct = (np.Value - op.Value) / op.Value * 100
		case np.Value != 0 && !op.HigherIsBetter:
			// A lower-is-better point rising off zero is pure regression.
			d.WorsePct = 100
		}
		d.Regressed = d.WorsePct > maxRegressPct
		out = append(out, d)
	}
	for _, np := range new.Points {
		if !seen[np.Name] {
			out = append(out, CoreDelta{Name: np.Name, Unit: np.Unit, New: np.Value, Missing: true})
		}
	}
	return out
}
