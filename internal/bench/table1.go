package bench

import (
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Table1 is the analog of the paper's Table 1 ("Summary of lines of
// modifications"): lines of Go code per module of this reproduction,
// split into implementation and tests.
func Table1() []Row {
	root := repoRoot()
	counts := map[string][2]int{} // module -> [impl, test]
	filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return nil
		}
		parts := strings.Split(filepath.ToSlash(rel), "/")
		var module string
		switch parts[0] {
		case "internal":
			if len(parts) < 2 {
				return nil
			}
			module = "internal/" + parts[1]
			if parts[1] == "apps" && len(parts) > 2 {
				module = "internal/apps/" + parts[2]
			}
		case "cmd", "examples":
			module = parts[0]
		default:
			module = "(root)"
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil
		}
		lines := strings.Count(string(data), "\n")
		c := counts[module]
		if strings.HasSuffix(path, "_test.go") {
			c[1] += lines
		} else {
			c[0] += lines
		}
		counts[module] = c
		return nil
	})
	modules := make([]string, 0, len(counts))
	for m := range counts {
		modules = append(modules, m)
	}
	sort.Strings(modules)
	var rows []Row
	totalImpl, totalTest := 0, 0
	for _, m := range modules {
		c := counts[m]
		rows = append(rows, row("table1", m, "impl", float64(c[0]), "lines"))
		rows = append(rows, row("table1", m, "test", float64(c[1]), "lines"))
		totalImpl += c[0]
		totalTest += c[1]
	}
	rows = append(rows, row("table1", "TOTAL", "impl", float64(totalImpl), "lines"))
	rows = append(rows, row("table1", "TOTAL", "test", float64(totalTest), "lines"))
	return rows
}

// repoRoot locates the module root from this source file's position.
func repoRoot() string {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		return "."
	}
	// file = <root>/internal/bench/table1.go
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}
