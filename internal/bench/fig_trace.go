package bench

import (
	"solros/internal/core"
	"solros/internal/ninep"
	"solros/internal/sim"
	"solros/internal/telemetry"
)

// Tracing-overhead experiment (satellite of the observability PR): the
// pipelined cold-read benchmark with end-to-end causal tracing off vs on.
// Tracing appends a 16-byte trace trailer to every RPC frame and opens
// spans on the request path, so it is the one observability feature that
// is *not* free in virtual time — this experiment quantifies exactly how
// not-free, which is what the default-off posture is buying.
const traceFileBytes = 8 << 20

var traceSizes = []int64{512 << 10, 2 << 20}

// TraceOverhead measures GB/s with tracing off and on plus the relative
// overhead per read size.
func TraceOverhead() []Row {
	type point struct{ off, on float64 }
	pts := make(map[int64]point)
	for _, bs := range traceSizes {
		pts[bs] = point{off: tracePoint(false, bs), on: tracePoint(true, bs)}
	}
	var rows []Row
	for _, bs := range traceSizes {
		rows = append(rows, row("traceov", "tracing-off", sizeLabel(bs), pts[bs].off, "GB/s"))
	}
	for _, bs := range traceSizes {
		rows = append(rows, row("traceov", "tracing-on", sizeLabel(bs), pts[bs].on, "GB/s"))
	}
	for _, bs := range traceSizes {
		ovh := 0.0
		if pts[bs].off > 0 {
			ovh = (pts[bs].off - pts[bs].on) / pts[bs].off * 100
		}
		rows = append(rows, row("traceov", "overhead", sizeLabel(bs), ovh, "%"))
	}
	return rows
}

// tracePoint is pipePoint with the full pipeline on and tracing as given.
// Each traced run gets a private sink so span retention never crosses
// configurations.
func tracePoint(traced bool, bs int64) float64 {
	cfg := core.Config{
		DiskBytes:    pipeDiskBytes,
		PhiMemBytes:  bs + (64 << 20),
		ProxyWorkers: 8,
		Pipeline:     true,
		BatchRecv:    true,
		Overlap:      true,
	}
	if traced {
		cfg.Tracing = true
		cfg.Telemetry = telemetry.New(telemetry.Options{})
	}
	m := core.NewMachine(cfg)
	var secs float64
	m.MustRun(func(p *sim.Proc, mm *core.Machine) {
		phi := mm.Phis[0]
		fd, err := phi.FS.Open(p, "/traceov", ninep.OCreate|ninep.OBuffer)
		if err != nil {
			panic(err)
		}
		f, err := mm.FS.Open(p, "/traceov")
		if err != nil {
			panic(err)
		}
		if err := f.Truncate(p, traceFileBytes); err != nil {
			panic(err)
		}
		buf := phi.FS.AllocBuffer(bs)
		start := p.Now()
		for off := int64(0); off+bs <= traceFileBytes; off += bs {
			if _, err := phi.FS.Read(p, fd, off, buf, bs); err != nil {
				panic(err)
			}
		}
		secs = (p.Now() - start).Seconds()
	})
	return gbs(traceFileBytes, secs)
}
