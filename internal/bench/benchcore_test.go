package bench

import (
	"path/filepath"
	"testing"
)

func corePoints() CoreBench {
	return CoreBench{
		Schema: CoreSchema,
		Points: []CorePoint{
			{Name: "tput", Value: 2.0, Unit: "GB/s", HigherIsBetter: true},
			{Name: "overhead", Value: 1.0, Unit: "%", HigherIsBetter: false},
		},
	}
}

// A baseline compared against itself never regresses; a 10% throughput
// drop or overhead rise past a 5% budget is flagged; movement inside the
// budget is not.
func TestCompareCore(t *testing.T) {
	base := corePoints()
	if ds := CompareCore(base, base, 5); countRegressed(ds) != 0 {
		t.Errorf("self-compare regressed: %+v", ds)
	}

	worse := corePoints()
	worse.Points[0].Value = 1.8 // throughput -10%
	worse.Points[1].Value = 1.1 // overhead +10%
	ds := CompareCore(base, worse, 5)
	if countRegressed(ds) != 2 {
		t.Fatalf("10%% regressions not flagged: %+v", ds)
	}
	for _, d := range ds {
		if d.WorsePct < 9.9 || d.WorsePct > 10.1 {
			t.Errorf("%s: WorsePct = %v, want ~10", d.Name, d.WorsePct)
		}
	}

	slight := corePoints()
	slight.Points[0].Value = 1.94 // throughput -3%: inside budget
	if ds := CompareCore(base, slight, 5); countRegressed(ds) != 0 {
		t.Errorf("3%% movement flagged at 5%% budget: %+v", ds)
	}

	improved := corePoints()
	improved.Points[0].Value = 2.4 // faster
	improved.Points[1].Value = 0.5 // cheaper
	if ds := CompareCore(base, improved, 5); countRegressed(ds) != 0 {
		t.Errorf("improvements flagged as regressions: %+v", ds)
	}
}

// A benchmark point silently dropped from the new document counts as a
// regression; a newly added point is reported but does not fail the gate.
func TestCompareCoreMissingPoints(t *testing.T) {
	base := corePoints()
	dropped := CoreBench{Schema: CoreSchema, Points: base.Points[:1]}
	ds := CompareCore(base, dropped, 5)
	if countRegressed(ds) != 1 {
		t.Errorf("dropped point not flagged: %+v", ds)
	}

	grown := corePoints()
	grown.Points = append(grown.Points, CorePoint{Name: "extra", Value: 1, Unit: "GB/s", HigherIsBetter: true})
	ds = CompareCore(base, grown, 5)
	if countRegressed(ds) != 0 {
		t.Errorf("new point failed the gate: %+v", ds)
	}
	found := false
	for _, d := range ds {
		if d.Name == "extra" && d.Missing && !d.Regressed {
			found = true
		}
	}
	if !found {
		t.Errorf("new point not reported: %+v", ds)
	}
}

// The committed baseline loads, carries the current schema, and passes
// the gate against itself — the CI benchdiff step depends on all three.
func TestCommittedBaselineSelfCompare(t *testing.T) {
	cb, err := LoadCoreBench("BENCH_core.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(cb.Points) != 6 {
		t.Fatalf("baseline has %d points, want 6 (4 throughput/overhead + allocs + bytes)", len(cb.Points))
	}
	for _, p := range cb.Points {
		if p.Value <= 0 && p.HigherIsBetter {
			t.Errorf("baseline point %s is %v", p.Name, p.Value)
		}
	}
	if ds := CompareCore(cb, cb, 5); countRegressed(ds) != 0 {
		t.Errorf("committed baseline regressed against itself: %+v", ds)
	}
}

// Round-trip through the JSON document, plus schema validation.
func TestCoreBenchRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "b.json")
	if err := WriteCoreBench(path, corePoints()); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCoreBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Points) != 2 || got.Points[0] != corePoints().Points[0] {
		t.Errorf("round-trip = %+v", got)
	}

	bad := corePoints()
	bad.Schema = "something-else/v9"
	if err := WriteCoreBench(path, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCoreBench(path); err == nil {
		t.Error("wrong schema accepted")
	}
}

func countRegressed(ds []CoreDelta) int {
	n := 0
	for _, d := range ds {
		if d.Regressed {
			n++
		}
	}
	return n
}
