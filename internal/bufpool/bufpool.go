// Package bufpool provides the pooled-buffer layer of the zero-alloc hot
// path: size-classed free lists for message buffers that are checked out
// and explicitly recycled, plus grow-once scratch buffers for encode and
// decode staging.
//
// Nothing here is goroutine-safe and nothing needs to be: every pool is
// owned by exactly one ring, connection, or serve-loop, and the sim kernel
// serializes all procs of one machine. The wall-clock parallel bench
// backend runs one machine (and therefore one set of pools) per goroutine,
// so pools are never shared across OS threads either.
package bufpool

// minClassBits is the smallest size class, 64 bytes — one cache line,
// and comfortably larger than a header-only ninep message.
const minClassBits = 6

// numClasses covers 64 B .. 2 GB-ish; in practice ring messages top out at
// the ring capacity (a few MB).
const numClasses = 26

// maxPerClass bounds how many idle buffers one class retains. Beyond this
// the buffer is dropped for the GC — the pool is a hot-path amortizer, not
// a leak.
const maxPerClass = 64

// classFor returns the class index whose buffers hold at least n bytes.
func classFor(n int) int {
	c := 0
	for size := 1 << minClassBits; size < n; size <<= 1 {
		c++
	}
	return c
}

// classSize is the capacity of buffers in class c.
func classSize(c int) int { return 1 << (minClassBits + c) }

// Pool hands out byte buffers from per-size-class free lists. Get checks a
// buffer out; Put checks it back in. A buffer that is never Put is simply
// garbage — correctness never depends on recycling, only allocation rates.
type Pool struct {
	classes [numClasses][][]byte

	// gets/news report pool effectiveness: news counts Gets that had to
	// allocate.
	gets, news int64
}

// Get returns a length-n buffer with capacity of n's size class.
func (p *Pool) Get(n int) []byte {
	if n < 0 {
		panic("bufpool: negative size")
	}
	p.gets++
	c := classFor(n)
	if c >= numClasses {
		p.news++
		return make([]byte, n)
	}
	if l := p.classes[c]; len(l) > 0 {
		b := l[len(l)-1]
		l[len(l)-1] = nil
		p.classes[c] = l[:len(l)-1]
		return b[:n]
	}
	p.news++
	return make([]byte, n, classSize(c))
}

// Put returns b to its size class. Buffers with off-class capacities (or a
// full class) are dropped; Put(nil) is a no-op.
func (p *Pool) Put(b []byte) {
	if cap(b) == 0 {
		return
	}
	c := classFor(cap(b))
	if c >= numClasses || classSize(c) != cap(b) {
		return // not one of ours (or oversized); let the GC have it
	}
	if len(p.classes[c]) >= maxPerClass {
		return
	}
	p.classes[c] = append(p.classes[c], b[:cap(b)])
}

// Stats reports total Gets and how many of them allocated.
func (p *Pool) Stats() (gets, news int64) { return p.gets, p.news }

// Scratch is a grow-once reusable buffer: Bytes returns a length-n view,
// growing the backing array only when n exceeds every previous request.
// The view is valid until the next Bytes call.
type Scratch struct{ buf []byte }

// Bytes returns a length-n view of the scratch, growing as needed.
func (s *Scratch) Bytes(n int) []byte {
	if cap(s.buf) < n {
		// Round up to the size class so repeated near-misses don't
		// reallocate per call.
		c := classFor(n)
		size := n
		if c < numClasses {
			size = classSize(c)
		}
		s.buf = make([]byte, size)
	}
	return s.buf[:n]
}

// Cap reports the current backing capacity, for tests.
func (s *Scratch) Cap() int { return cap(s.buf) }
