package bufpool

import "testing"

func TestGetPutReuses(t *testing.T) {
	var p Pool
	b := p.Get(100)
	if len(b) != 100 || cap(b) != 128 {
		t.Fatalf("Get(100) = len %d cap %d, want 100/128", len(b), cap(b))
	}
	b[0] = 0xAA
	p.Put(b)
	b2 := p.Get(80) // same 128-byte class
	if cap(b2) != 128 {
		t.Fatalf("recycled Get(80) cap = %d, want 128 (same class)", cap(b2))
	}
	if &b2[0] != &b[0] {
		t.Fatal("Get after Put did not reuse the buffer")
	}
	gets, news := p.Stats()
	if gets != 2 || news != 1 {
		t.Fatalf("stats = %d gets / %d news, want 2/1", gets, news)
	}
}

func TestClassSeparation(t *testing.T) {
	var p Pool
	small := p.Get(64)
	p.Put(small)
	big := p.Get(65)
	if cap(big) != 128 {
		t.Fatalf("Get(65) cap = %d, want 128", cap(big))
	}
	if len(big) != 65 {
		t.Fatalf("Get(65) len = %d", len(big))
	}
}

func TestPutForeignBufferDropped(t *testing.T) {
	var p Pool
	p.Put(make([]byte, 0, 100)) // 100 is no class size; must be dropped
	b := p.Get(100)
	if cap(b) != 128 {
		t.Fatalf("foreign Put leaked into pool: cap %d", cap(b))
	}
}

func TestPutBounded(t *testing.T) {
	var p Pool
	for i := 0; i < maxPerClass+10; i++ {
		p.Put(make([]byte, 64))
	}
	if n := len(p.classes[0]); n != maxPerClass {
		t.Fatalf("class retained %d buffers, want %d", n, maxPerClass)
	}
}

func TestGetZero(t *testing.T) {
	var p Pool
	b := p.Get(0)
	if len(b) != 0 {
		t.Fatalf("Get(0) len = %d", len(b))
	}
}

func TestScratchGrowOnce(t *testing.T) {
	var s Scratch
	b := s.Bytes(100)
	if len(b) != 100 || s.Cap() != 128 {
		t.Fatalf("Bytes(100): len %d cap %d", len(b), s.Cap())
	}
	b2 := s.Bytes(50)
	if &b2[0] != &b[0] {
		t.Fatal("smaller Bytes reallocated")
	}
	s.Bytes(4096)
	if s.Cap() != 4096 {
		t.Fatalf("grown cap = %d, want 4096", s.Cap())
	}
}

func TestPoolAllocsSteadyState(t *testing.T) {
	var p Pool
	warm := p.Get(4096)
	p.Put(warm)
	allocs := testing.AllocsPerRun(1000, func() {
		b := p.Get(4096)
		p.Put(b)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Get/Put allocates %v per op, want 0", allocs)
	}
}
